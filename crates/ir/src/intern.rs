//! Job-name interning shared by every frontend.
//!
//! Moved here from the DAGMan parser so the JSON and edge-list frontends
//! (and the [`crate::workflow::WorkflowBuilder`]) can share one
//! allocation per distinct name token.
//!
//! The hash itself now lives in `prio_graph::labelhash` (re-exported here
//! unchanged), so the graph layer's own label → id maps use the same
//! function without a dependency cycle.

use std::collections::HashSet;

// Re-exported so existing `prio_ir::{NameHasher, NameHashBuild}` users keep
// compiling; the definition moved down to the graph layer.
pub use prio_graph::{NameHashBuild, NameHasher};

/// An interned job name.
///
/// Job names repeat across statements of every workflow format — on large
/// inputs almost every name token is a repeat (a declaration plus one or
/// more dependency mentions) — so statements share one reference-counted
/// allocation per distinct name instead of a fresh `String` per token.
pub type JobName = std::sync::Arc<str>;

/// Deduplicates job-name allocations across statements: each distinct name
/// is allocated once and every later occurrence clones the shared
/// [`JobName`].
#[derive(Default)]
pub struct NameInterner(HashSet<JobName, NameHashBuild>);

impl NameInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the interned name for `token`, allocating only on the first
    /// occurrence.
    pub fn intern(&mut self, token: &str) -> JobName {
        if let Some(existing) = self.0.get(token) {
            existing.clone()
        } else {
            let name = JobName::from(token);
            self.0.insert(name.clone());
            name
        }
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no name has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn interning_shares_allocations() {
        let mut names = NameInterner::new();
        let a1 = names.intern("job17");
        let a2 = names.intern("job17");
        let b = names.intern("job18");
        assert!(JobName::ptr_eq(&a1, &a2));
        assert!(!JobName::ptr_eq(&a1, &b));
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn hasher_distinguishes_sequential_names() {
        let build = NameHashBuild;
        let h = |s: &str| {
            let mut hasher = build.build_hasher();
            hasher.write(s.as_bytes());
            hasher.finish()
        };
        // Low bits must differ for bucket indexing.
        let mut low = std::collections::HashSet::new();
        for i in 0..64 {
            low.insert(h(&format!("job{i}")) & 0xfff);
        }
        assert!(low.len() > 48, "low-bit clustering: {}", low.len());
    }

    /// The 10⁷-scale keyspace audit that surfaced the tail length-
    /// ambiguity bug: hash a large sequential-name keyspace (`j0`, `j1`,
    /// …) and assert the 64-bit collision count stays near the birthday
    /// bound. Debug builds audit 10⁶ names to keep the test fast; release
    /// test runs (`cargo test --release`) audit the full 10⁷.
    #[test]
    fn sequential_keyspace_collision_rate_is_birthday_bounded() {
        let n: usize = if cfg!(debug_assertions) {
            1_000_000
        } else {
            10_000_000
        };
        let build = NameHashBuild;
        let mut hashes: Vec<u64> = Vec::with_capacity(n);
        // Manual byte formatting: `format!` per name would dominate the
        // audit's runtime at 10⁷ names.
        let mut buf = [0u8; 12];
        buf[0] = b'j';
        for i in 0..n {
            let mut len = 1;
            let digits = &mut buf[1..];
            let mut x = i;
            let mut k = 0;
            loop {
                digits[k] = b'0' + (x % 10) as u8;
                x /= 10;
                k += 1;
                if x == 0 {
                    break;
                }
            }
            digits[..k].reverse();
            len += k;
            let mut hasher = build.build_hasher();
            hasher.write(&buf[..len]);
            hashes.push(hasher.finish());
        }
        hashes.sort_unstable();
        let collisions = hashes.windows(2).filter(|w| w[0] == w[1]).count();
        // Birthday expectation for 64-bit hashes: n²/2⁶⁵ ≈ 0.003 at 10⁶,
        // ≈ 0.3 at 10⁷. Allow a small margin; the pre-fix hasher produced
        // *systematic* families (thousands of collisions), not onesies.
        assert!(
            collisions <= 3,
            "{collisions} collisions across {n} sequential names — degenerate hash family"
        );
    }
}
