//! The Makeflow/JSON-style graph frontend (`prio-workflow-v1`).
//!
//! ```json
//! {
//!   "format": "prio-workflow-v1",
//!   "jobs": [
//!     {"name": "a", "priority": 5, "submit": "a.submit"},
//!     {"name": "b"}
//!   ],
//!   "arcs": [
//!     ["a", "b"]
//!   ]
//! }
//! ```
//!
//! A job entry is an object with a required `"name"`; an optional integer
//! `"priority"`; and any further *string-valued* keys, which become the
//! job's IR metadata (`"submit"`, `"subdag"`, …) so cross-format
//! conversion is lossless. A bare string is shorthand for `{"name": …}`.
//! Arcs are `[parent, child]` name pairs over declared jobs. The export
//! is canonical: jobs in index order (one per line), then arcs in index
//! order, with metadata keys sorted.

use crate::error::{ImportError, PrioError};
use crate::frontend::Frontend;
use crate::workflow::{FormatId, Priorities, Workflow, WorkflowBuilder};
use prio_obs::json::{escape, parse, JsonValue};
use std::fmt::Write as _;

/// The value of the `"format"` tag this frontend reads and writes.
pub const FORMAT_TAG: &str = "prio-workflow-v1";

/// The JSON graph frontend.
pub struct JsonFrontend;

fn err(message: impl Into<String>) -> PrioError {
    ImportError::whole_file(FormatId::Json, message).into()
}

/// The value as an `i64`, if numeric and integral.
fn as_i64(v: &JsonValue) -> Option<i64> {
    match v.as_f64() {
        Some(n) if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&n) => {
            Some(n as i64)
        }
        _ => None,
    }
}

impl Frontend for JsonFrontend {
    fn id(&self) -> FormatId {
        FormatId::Json
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["json"]
    }

    fn sniff(&self, text: &str) -> bool {
        let t = text.trim_start();
        t.starts_with('{') && t.contains("\"jobs\"")
    }

    fn import(&self, text: &str) -> Result<Workflow, PrioError> {
        let _span = prio_obs::span(prio_obs::stage::PARSE);
        let doc = parse(text).map_err(err)?;
        if !doc.is_object() {
            return Err(err("top level must be an object"));
        }
        if let Some(tag) = doc.get("format") {
            match tag.as_str() {
                Some(FORMAT_TAG) => {}
                Some(other) => return Err(err(format!("unsupported format tag {other:?}"))),
                None => return Err(err("\"format\" must be a string")),
            }
        }
        let JsonValue::Arr(jobs) = doc.get("jobs").ok_or_else(|| err("missing \"jobs\""))? else {
            return Err(err("\"jobs\" must be an array"));
        };
        let arcs = match doc.get("arcs") {
            None => &[][..],
            Some(JsonValue::Arr(arcs)) => arcs.as_slice(),
            Some(_) => return Err(err("\"arcs\" must be an array")),
        };

        let mut b = WorkflowBuilder::with_capacity(FormatId::Json, jobs.len(), arcs.len());
        for (i, entry) in jobs.iter().enumerate() {
            let (name, obj) = match entry {
                JsonValue::Str(name) => (name.as_str(), None),
                JsonValue::Obj(map) => {
                    let name = map
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| err(format!("jobs[{i}]: missing string \"name\"")))?;
                    (name, Some(map))
                }
                _ => return Err(err(format!("jobs[{i}]: must be an object or a string"))),
            };
            if b.get(name).is_some() {
                return Err(err(format!("jobs[{i}]: duplicate job {name:?}")));
            }
            let u = b.job(name);
            if let Some(map) = obj {
                for (key, value) in map {
                    match key.as_str() {
                        "name" => {}
                        "priority" => {
                            let p = as_i64(value).ok_or_else(|| {
                                err(format!("jobs[{i}]: \"priority\" must be an integer"))
                            })?;
                            b.set_priority(u, p);
                        }
                        _ => {
                            let v = value.as_str().ok_or_else(|| {
                                err(format!("jobs[{i}]: metadata {key:?} must be a string"))
                            })?;
                            b.set_meta(u, key.clone(), v);
                        }
                    }
                }
            }
        }
        for (i, entry) in arcs.iter().enumerate() {
            let JsonValue::Arr(pair) = entry else {
                return Err(err(format!("arcs[{i}]: must be a [parent, child] pair")));
            };
            let [p, c] = pair.as_slice() else {
                return Err(err(format!("arcs[{i}]: must have exactly two entries")));
            };
            let (Some(p), Some(c)) = (p.as_str(), c.as_str()) else {
                return Err(err(format!("arcs[{i}]: entries must be job names")));
            };
            let (Some(pu), Some(cu)) = (b.get(p), b.get(c)) else {
                let missing = if b.get(p).is_none() { p } else { c };
                return Err(err(format!("arcs[{i}]: unknown job {missing:?}")));
            };
            b.arc(pu, cu).map_err(|e| err(format!("arcs[{i}]: {e}")))?;
        }
        let wf = b.build()?;
        prio_obs::counter("json.parse.files").add(1);
        prio_obs::counter("json.parse.jobs").add(wf.num_jobs() as u64);
        prio_obs::counter("json.parse.arcs").add(wf.num_arcs() as u64);
        Ok(wf)
    }

    fn export(&self, workflow: &Workflow, priorities: &Priorities) -> String {
        let _span = prio_obs::span(prio_obs::stage::WRITE);
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": {},", escape(FORMAT_TAG));
        out.push_str("  \"jobs\": [\n");
        let n = workflow.num_nodes();
        for u in workflow.node_ids() {
            let mut line = format!("    {{\"name\": {}", escape(workflow.job_name(u)));
            if let Some(p) = priorities.get(u) {
                let _ = write!(line, ", \"priority\": {p}");
            }
            for (k, v) in workflow.meta_of(u) {
                let _ = write!(line, ", {}: {}", escape(k), escape(v));
            }
            line.push('}');
            if u.index() + 1 < n {
                line.push(',');
            }
            out.push_str(&line);
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"arcs\": [\n");
        let mut first = true;
        for u in workflow.node_ids() {
            for &c in workflow.children(u) {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    [{}, {}]",
                    escape(workflow.job_name(u)),
                    escape(workflow.job_name(c))
                );
            }
        }
        if !first {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::NodeId;

    fn sample() -> Workflow {
        let mut b = WorkflowBuilder::new(FormatId::Json);
        let a = b.job("a");
        let c = b.job("b c"); // whitespace in a name is fine in JSON
        let d = b.job("d\"q"); // and so is a quote
        b.arc(a, c).unwrap();
        b.arc(a, d).unwrap();
        b.set_priority(a, 3);
        b.set_meta(c, "submit", "bc.submit");
        b.build().unwrap()
    }

    #[test]
    fn export_import_round_trips_content() {
        let wf = sample();
        let f = JsonFrontend;
        let text = f.export(&wf, wf.priorities());
        let back = f.import(&text).unwrap();
        assert!(wf.same_content(&back), "round-trip changed the workflow");
        assert_eq!(back.source(), FormatId::Json);
        // Canonical: a second export is byte-identical.
        assert_eq!(f.export(&back, back.priorities()), text);
    }

    #[test]
    fn import_reads_shorthand_and_priorities() {
        let text = r#"{
            "format": "prio-workflow-v1",
            "jobs": ["a", {"name": "b", "priority": -2}],
            "arcs": [["a", "b"]]
        }"#;
        let wf = JsonFrontend.import(text).unwrap();
        assert_eq!(wf.num_jobs(), 2);
        assert_eq!(wf.num_arcs(), 1);
        assert_eq!(wf.priorities().get(NodeId(1)), Some(-2));
        assert_eq!(wf.priorities().get(NodeId(0)), None);
    }

    #[test]
    fn malformed_inputs_carry_json_provenance() {
        let cases = [
            "[]",
            "{\"jobs\": 3}",
            "{}",
            r#"{"format": "other", "jobs": []}"#,
            r#"{"jobs": [{"priority": 1}]}"#,
            r#"{"jobs": ["a", "a"]}"#,
            r#"{"jobs": ["a"], "arcs": [["a"]]}"#,
            r#"{"jobs": ["a"], "arcs": [["a", "ghost"]]}"#,
            r#"{"jobs": ["a"], "arcs": [["a", "a"]]}"#,
            r#"{"jobs": [{"name": "a", "priority": 1.5}]}"#,
            "{\"jobs\": [",
        ];
        for text in cases {
            let e = JsonFrontend.import(text).unwrap_err();
            assert!(
                e.to_string().starts_with("parse: json:"),
                "bad provenance for {text:?}: {e}"
            );
        }
        // A dependency cycle is a graph error, still at the parse stage.
        let e = JsonFrontend
            .import(r#"{"jobs": ["a", "b"], "arcs": [["a", "b"], ["b", "a"]]}"#)
            .unwrap_err();
        assert_eq!(e.stage(), crate::error::Stage::Parse);
    }

    #[test]
    fn sniff_accepts_workflow_json_only() {
        assert!(JsonFrontend.sniff(r#"{"jobs": []}"#));
        assert!(JsonFrontend.sniff("  {\n\"format\": \"x\", \"jobs\": []}"));
        assert!(!JsonFrontend.sniff("JOB a a.submit"));
        assert!(!JsonFrontend.sniff("a\tb"));
        assert!(!JsonFrontend.sniff(r#"{"spans": []}"#));
    }

    #[test]
    fn empty_workflow_exports_and_reimports() {
        let wf = WorkflowBuilder::new(FormatId::Json).build().unwrap();
        let f = JsonFrontend;
        let text = f.export(&wf, wf.priorities());
        let back = f.import(&text).unwrap();
        assert_eq!(back.num_jobs(), 0);
        assert_eq!(back.num_arcs(), 0);
    }
}
