//! # prio-stats — statistics substrate for the simulation study
//!
//! Implements the statistical methodology of §4.2 of the paper:
//!
//! * seedable random number generation with reproducible per-stream seed
//!   derivation ([`rng`]);
//! * the sampling distributions the grid model needs — exponential batch
//!   inter-arrival times, (truncated) normal job running times, and a
//!   geometric integer batch-size model as the discrete analog of the
//!   paper's "exponentially distributed batch size" ([`dist`]);
//! * summary statistics ([`summary`]);
//! * *empirical sampling distributions*: `p` samples, each the average of
//!   `q` measurements, the distribution of the ratio of two such sampling
//!   distributions formed from all `p²` pairs, and 95% confidence intervals
//!   obtained by trimming 2.5% from each tail ([`sampling`], [`ci`]).
//!
//! Only the `rand` crate is used (for the core RNG); all distributions are
//! implemented here so the crate stays within the approved dependency set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod dist;
pub mod rng;
pub mod sampling;
pub mod summary;

pub use ci::ConfidenceInterval;
pub use dist::{Exponential, Geometric, TruncatedNormal};
pub use rng::{derive_seed, seeded_rng, SimRng};
pub use sampling::SamplingDistribution;
pub use summary::Summary;
