//! Seedable RNG plumbing.
//!
//! Every simulation replication gets its own independent, deterministically
//! derived seed, so results are reproducible bit-for-bit regardless of how
//! replications are distributed over threads.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG used throughout the simulator (a small, fast, seedable PRNG).
pub type SimRng = SmallRng;

/// Creates a [`SimRng`] from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> SimRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a master seed and a stream index
/// using the SplitMix64 finalizer (a bijective avalanche mix, so distinct
/// `(master, stream)` pairs map to well-separated seeds).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let s1 = derive_seed(7, 0);
        let s2 = derive_seed(7, 1);
        assert_ne!(s1, s2);
        let mut a = seeded_rng(s1);
        let mut b = seeded_rng(s2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pin the derivation so stored experiment outputs stay comparable.
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
        assert_ne!(derive_seed(0, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(0, 5), derive_seed(0, 6));
    }
}
