//! Empirical sampling distributions and ratio confidence intervals (§4.2).
//!
//! The paper estimates the ratio `μ_PRIO / μ_FIFO` of true mean metrics as
//! follows: build an empirical sampling distribution of each mean by taking
//! `p` samples, each the average of `q` independent simulated measurements;
//! form the distribution of the ratio from all `p²` pairs `(x, y)`; remove
//! the 2.5% smallest and largest values; the remaining range is a 95%
//! confidence interval. If a denominator sample is zero, no interval is
//! reported. Medians (the bold dots in Figs. 6–9), means and standard
//! deviations of the ratio distribution are also computed.

use crate::ci::ConfidenceInterval;
use crate::summary::{median_of_sorted, Summary};

/// An empirical sampling distribution: `p` samples, each the mean of `q`
/// underlying measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingDistribution {
    samples: Vec<f64>,
    q: usize,
}

impl SamplingDistribution {
    /// Builds the distribution from raw measurements laid out as `p`
    /// consecutive groups of `q`; panics if `measurements.len() != p * q`
    /// or either is zero.
    pub fn from_measurements(measurements: &[f64], p: usize, q: usize) -> Self {
        assert!(p > 0 && q > 0, "p and q must be positive");
        assert_eq!(measurements.len(), p * q, "expected p*q measurements");
        let samples = measurements
            .chunks_exact(q)
            .map(|chunk| chunk.iter().sum::<f64>() / q as f64)
            .collect();
        SamplingDistribution { samples, q }
    }

    /// Wraps precomputed per-sample means (each assumed to average `q`
    /// measurements).
    pub fn from_sample_means(samples: Vec<f64>, q: usize) -> Self {
        assert!(!samples.is_empty(), "at least one sample required");
        SamplingDistribution { samples, q }
    }

    /// The `p` sample means.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples `p`.
    pub fn p(&self) -> usize {
        self.samples.len()
    }

    /// Measurements averaged per sample, `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Summary statistics of the sample means.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples)
    }

    /// The empirical distribution of the ratio `self / other`, formed from
    /// all `p_self · p_other` pairs. Returns `None` if any denominator
    /// sample is zero (the paper: "Whenever we encounter y = 0, we do not
    /// report any confidence interval").
    pub fn ratio_distribution(&self, other: &SamplingDistribution) -> Option<Vec<f64>> {
        if other.samples.contains(&0.0) {
            return None;
        }
        let mut ratios = Vec::with_capacity(self.samples.len() * other.samples.len());
        for &x in &self.samples {
            for &y in &other.samples {
                ratios.push(x / y);
            }
        }
        Some(ratios)
    }

    /// 95% confidence interval of the ratio `self / other` (see module
    /// docs). `None` when a denominator sample is zero.
    pub fn ratio_ci(&self, other: &SamplingDistribution) -> Option<ConfidenceInterval> {
        let ratios = self.ratio_distribution(other)?;
        Some(trimmed_ci(ratios, 0.025))
    }
}

/// Builds a confidence interval by sorting `values` and trimming the given
/// fraction from each tail; location statistics are computed on the full
/// distribution. Panics on empty input.
pub fn trimmed_ci(mut values: Vec<f64>, tail: f64) -> ConfidenceInterval {
    assert!(
        !values.is_empty(),
        "confidence interval of empty distribution"
    );
    assert!(
        (0.0..0.5).contains(&tail),
        "tail fraction {tail} out of range"
    );
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in ratio distribution"));
    let n = values.len();
    let cut = ((n as f64) * tail).floor() as usize;
    // Keep at least one value.
    let (lo_i, hi_i) = if 2 * cut >= n {
        (0, n - 1)
    } else {
        (cut, n - 1 - cut)
    };
    let mean = values.iter().sum::<f64>() / n as f64;
    let sd = if n < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    ConfidenceInterval {
        lo: values[lo_i],
        hi: values[hi_i],
        median: median_of_sorted(&values),
        mean,
        sd,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_measurements_averages_groups() {
        let d = SamplingDistribution::from_measurements(&[1.0, 3.0, 5.0, 7.0], 2, 2);
        assert_eq!(d.samples(), &[2.0, 6.0]);
        assert_eq!(d.p(), 2);
        assert_eq!(d.q(), 2);
    }

    #[test]
    #[should_panic(expected = "p*q")]
    fn wrong_layout_panics() {
        SamplingDistribution::from_measurements(&[1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    fn ratio_distribution_has_p_squared_entries() {
        let a = SamplingDistribution::from_sample_means(vec![2.0, 4.0], 1);
        let b = SamplingDistribution::from_sample_means(vec![1.0, 2.0], 1);
        let r = a.ratio_distribution(&b).unwrap();
        assert_eq!(r.len(), 4);
        let mut sorted = r.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(sorted, vec![1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn zero_denominator_yields_none() {
        let a = SamplingDistribution::from_sample_means(vec![1.0], 1);
        let b = SamplingDistribution::from_sample_means(vec![0.0, 1.0], 1);
        assert!(a.ratio_distribution(&b).is_none());
        assert!(a.ratio_ci(&b).is_none());
    }

    #[test]
    fn identical_distributions_give_ci_containing_one() {
        let xs: Vec<f64> = (1..=100).map(|i| 10.0 + (i as f64) * 0.01).collect();
        let a = SamplingDistribution::from_sample_means(xs.clone(), 1);
        let b = SamplingDistribution::from_sample_means(xs, 1);
        let ci = a.ratio_ci(&b).unwrap();
        assert!(ci.contains(1.0), "{ci}");
        assert!((ci.median - 1.0).abs() < 0.01);
    }

    #[test]
    fn trimming_removes_outliers() {
        // 96 ones plus two extreme outliers on each side.
        let mut vals = vec![1.0; 96];
        vals.extend([-100.0, -50.0, 50.0, 100.0]);
        let ci = trimmed_ci(vals, 0.025);
        assert_eq!(ci.lo, 1.0, "floor(2.5% of 100) = 2 values cut per tail");
        assert_eq!(ci.hi, 1.0);
        assert_eq!(ci.median, 1.0);
    }

    #[test]
    fn trimmed_ci_on_tiny_distribution_keeps_range() {
        let ci = trimmed_ci(vec![2.0], 0.025);
        assert_eq!((ci.lo, ci.hi, ci.median), (2.0, 2.0, 2.0));
    }

    #[test]
    fn shifted_distributions_separate_from_one() {
        let a = SamplingDistribution::from_sample_means(vec![0.8, 0.82, 0.81, 0.79], 1);
        let b = SamplingDistribution::from_sample_means(vec![1.0, 1.01, 0.99, 1.0], 1);
        let ci = a.ratio_ci(&b).unwrap();
        assert!(ci.entirely_below(1.0), "{ci}");
        assert!(ci.median < 0.85);
    }
}
