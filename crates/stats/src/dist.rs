//! The probability distributions of the grid model (§4.1).
//!
//! * batch inter-arrival time — exponential with mean `μ_BIT`;
//! * job running time — normal with mean 1 and standard deviation 0.1
//!   (truncated away from zero so a runtime is always positive);
//! * batch size — the paper states "exponentially distributed with mean
//!   `μ_BS`" but a batch size is an integer; we provide the geometric
//!   distribution on {1, 2, …} (the discrete memoryless analog, exact mean
//!   `μ_BS` for any `μ_BS ≥ 1`) and a ceil-of-exponential alternative.
//!
//! Implemented by inverse-CDF / Box–Muller on top of `rand`'s uniform
//! source, keeping the dependency set minimal.

use rand::Rng;

/// Exponential distribution with the given mean (rate `1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates the distribution. Panics unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample by inverse CDF: `-mean · ln(1 - U)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen::<f64>()` is uniform on [0, 1); 1 - u is in (0, 1] so the log
        // is finite.
        let u: f64 = rng.gen();
        -self.mean * (1.0 - u).ln()
    }
}

/// Normal distribution via the Box–Muller transform, truncated below at
/// `min` by rejection (resampling).
///
/// With the paper's parameters (mean 1, sd 0.1) truncation at a small
/// positive bound rejects about one sample in 10²³, so the truncation is a
/// safety net, not a distortion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mean: f64,
    sd: f64,
    min: f64,
}

impl TruncatedNormal {
    /// Creates the distribution. Panics unless `sd >= 0` and `min` is
    /// reachable (i.e. not absurdly far above the mean).
    pub fn new(mean: f64, sd: f64, min: f64) -> Self {
        assert!(
            sd >= 0.0 && sd.is_finite(),
            "standard deviation must be non-negative"
        );
        assert!(
            min <= mean + 8.0 * sd.max(f64::MIN_POSITIVE),
            "truncation bound {min} unreachable for N({mean}, {sd})"
        );
        TruncatedNormal { mean, sd, min }
    }

    /// The paper's job-running-time distribution: `N(1, 0.1)` truncated at
    /// a small positive epsilon.
    pub fn job_runtime() -> Self {
        TruncatedNormal::new(1.0, 0.1, 1e-3)
    }

    /// The configured mean (of the untruncated normal).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The configured standard deviation (of the untruncated normal).
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean.max(self.min);
        }
        loop {
            // Box–Muller; the second variate is discarded to keep the
            // sampler stateless (simplicity beats a 2x speedup here).
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let x = self.mean + self.sd * z;
            if x >= self.min {
                return x;
            }
        }
    }
}

/// Geometric distribution on `{1, 2, 3, …}` with the given mean — the
/// discrete analog of the exponential, used for integer batch sizes.
///
/// Success probability is `p = 1 / mean`; `P(X = k) = (1-p)^{k-1} p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    mean: f64,
}

impl Geometric {
    /// Creates the distribution. Panics unless `mean >= 1`.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean >= 1.0 && mean.is_finite(),
            "geometric mean must be >= 1, got {mean}"
        );
        Geometric { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws a sample by inverse CDF: `1 + floor(ln(1-U) / ln(1-p))`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let p = 1.0 / self.mean;
        if p >= 1.0 {
            return 1;
        }
        let u: f64 = rng.gen();
        let k = 1.0 + ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        // Guard against numerical blow-ups in the extreme tail.
        k.max(1.0).min(u64::MAX as f64) as u64
    }
}

/// Ceiling-of-exponential batch size: `ceil(Exp(mean))`, an alternative
/// integer reading of the paper's "exponentially distributed" batch size.
/// Its mean is `1 / (1 - e^{-1/mean})`, slightly above `mean` for small
/// means and converging to `mean + 1/2` for large ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CeilExponential {
    inner: Exponential,
}

impl CeilExponential {
    /// Creates the distribution with the mean of the underlying exponential.
    pub fn new(mean: f64) -> Self {
        CeilExponential {
            inner: Exponential::new(mean),
        }
    }

    /// Draws an integer sample ≥ 1.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let x = self.inner.sample(rng);
        (x.ceil().max(1.0)).min(u64::MAX as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    const N: usize = 200_000;

    fn mean_of(mut f: impl FnMut() -> f64) -> f64 {
        (0..N).map(|_| f()).sum::<f64>() / N as f64
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = seeded_rng(1);
        let d = Exponential::new(3.5);
        let mut min = f64::INFINITY;
        let m = mean_of(|| {
            let x = d.sample(&mut rng);
            min = min.min(x);
            x
        });
        assert!((m - 3.5).abs() < 0.05, "mean {m} too far from 3.5");
        assert!(min >= 0.0);
    }

    #[test]
    fn exponential_small_mean() {
        let mut rng = seeded_rng(2);
        let d = Exponential::new(1e-3);
        let m = mean_of(|| d.sample(&mut rng));
        assert!((m - 1e-3).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        Exponential::new(0.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(3);
        let d = TruncatedNormal::job_runtime();
        let xs: Vec<f64> = (0..N).map(|_| d.sample(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / N as f64;
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (N - 1) as f64;
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
        assert!((v.sqrt() - 0.1).abs() < 0.01, "sd {}", v.sqrt());
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn normal_zero_sd_is_deterministic() {
        let mut rng = seeded_rng(4);
        let d = TruncatedNormal::new(2.0, 0.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 2.0);
        }
    }

    #[test]
    fn normal_truncation_respected() {
        let mut rng = seeded_rng(5);
        let d = TruncatedNormal::new(0.0, 1.0, 0.5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.5);
        }
    }

    #[test]
    fn geometric_mean_is_exact_analog() {
        let mut rng = seeded_rng(6);
        for mean in [1.0, 2.0, 16.0, 1024.0] {
            let d = Geometric::new(mean);
            let m = (0..N).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / N as f64;
            assert!(
                (m - mean).abs() / mean < 0.03,
                "geometric mean {m} vs {mean}"
            );
        }
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let mut rng = seeded_rng(7);
        let d = Geometric::new(1.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1);
        }
    }

    #[test]
    fn ceil_exponential_at_least_one() {
        let mut rng = seeded_rng(8);
        let d = CeilExponential::new(4.0);
        let mut total = 0u64;
        for _ in 0..N {
            let x = d.sample(&mut rng);
            assert!(x >= 1);
            total += x;
        }
        let m = total as f64 / N as f64;
        // E[ceil(Exp(4))] = 1 / (1 - e^{-1/4}) ≈ 4.521.
        assert!((m - 4.521).abs() < 0.05, "mean {m}");
    }
}
