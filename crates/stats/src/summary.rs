//! Summary statistics: batch summaries and an online (Welford) accumulator.

/// Summary statistics of a batch of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (0 for an empty batch).
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub sd: f64,
    /// Minimum (`+inf` for an empty batch).
    pub min: f64,
    /// Maximum (`-inf` for an empty batch).
    pub max: f64,
    /// Median (0 for an empty batch).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`. NaNs must not be present.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n,
                mean: 0.0,
                sd: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                median: 0.0,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summary input"));
        Summary {
            n,
            mean,
            sd: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: median_of_sorted(&sorted),
        }
    }
}

/// Median of an already-sorted slice (average of the middle two for even
/// lengths). Panics on empty input.
pub fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "median of empty slice");
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear-interpolation quantile of an already-sorted slice, `q ∈ [0, 1]`.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Numerically stable online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current sample variance (0 when `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Current sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.mean += d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_batch() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample sd of 1..4 is sqrt(5/3).
        assert!((s.sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let e = Summary::of(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.sd, 0.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 5.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_of_sorted(&xs, 0.0), 0.0);
        assert_eq!(quantile_of_sorted(&xs, 1.0), 40.0);
        assert_eq!(quantile_of_sorted(&xs, 0.5), 20.0);
        assert!((quantile_of_sorted(&xs, 0.025) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let s = Summary::of(&xs);
        assert!((w.mean() - s.mean).abs() < 1e-12);
        assert!((w.sd() - s.sd).abs() < 1e-12);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        xs.iter().for_each(|&x| all.push(x));
        let (a, b) = xs.split_at(37);
        let mut wa = Welford::new();
        a.iter().for_each(|&x| wa.push(x));
        let mut wb = Welford::new();
        b.iter().for_each(|&x| wb.push(x));
        wa.merge(&wb);
        assert!((wa.mean() - all.mean()).abs() < 1e-10);
        assert!((wa.variance() - all.variance()).abs() < 1e-10);
        // Merging an empty accumulator is a no-op.
        let before = wa.mean();
        wa.merge(&Welford::new());
        assert_eq!(wa.mean(), before);
    }
}
