//! Confidence intervals for ratio statistics.

use std::fmt;

/// A 95% confidence interval with accompanying location statistics,
/// as plotted in the paper's Figs. 6–9 (segment = `[lo, hi]`, bold dot =
/// `median`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint (after trimming the 2.5% smallest values).
    pub lo: f64,
    /// Upper endpoint (after trimming the 2.5% largest values).
    pub hi: f64,
    /// Median of the full (untrimmed) distribution.
    pub median: f64,
    /// Mean of the full distribution.
    pub mean: f64,
    /// Sample standard deviation of the full distribution.
    pub sd: f64,
}

impl ConfidenceInterval {
    /// Whether the whole interval lies strictly below `x`.
    pub fn entirely_below(&self, x: f64) -> bool {
        self.hi < x
    }

    /// Whether the whole interval lies strictly above `x`.
    pub fn entirely_above(&self, x: f64) -> bool {
        self.lo > x
    }

    /// Whether `x` lies within the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] (median {:.4}, mean {:.4} ± {:.4})",
            self.lo, self.hi, self.median, self.mean, self.sd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let ci = ConfidenceInterval {
            lo: 0.8,
            hi: 0.9,
            median: 0.85,
            mean: 0.85,
            sd: 0.02,
        };
        assert!(ci.entirely_below(1.0));
        assert!(!ci.entirely_below(0.85));
        assert!(ci.entirely_above(0.5));
        assert!(ci.contains(0.8) && ci.contains(0.9) && !ci.contains(0.95));
        assert!((ci.width() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn display_shows_all_fields() {
        let ci = ConfidenceInterval {
            lo: 0.5,
            hi: 1.5,
            median: 1.0,
            mean: 1.0,
            sd: 0.1,
        };
        let s = ci.to_string();
        assert!(s.contains("0.5") && s.contains("1.5") && s.contains("median"));
    }
}
