//! The fault-layer verification harness: properties over random dags ×
//! fault models × seeds, plus byte-identity pins against the pre-fault
//! engine.
//!
//! Invariants checked (256 cases per property):
//! 1. precedence is never violated — a job is only ever assigned after
//!    all of its parents completed, faults or not;
//! 2. no job runs while an ancestor is failed-permanent (unreachable
//!    jobs are never assigned);
//! 3. completed + failed-permanent + unreachable partitions the job set;
//! 4. makespan is monotone (statistically, over seed panels) in the
//!    fault rate;
//! 5. a fault rate of 0 is *bit-identical* to the reliable engine —
//!    pinned with trace hashes of the four paper workflows captured on
//!    the pre-fault build.

use prio_graph::{Dag, NodeId};
use prio_sim::engine::{simulate_faulty, simulate_faulty_traced, simulate_traced};
use prio_sim::trace::TraceEvent;
use prio_sim::{
    simulate, Backoff, FaultConfig, FaultModel, GridModel, JobOutcome, PolicySpec, RetryPolicy,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random dag: `n` nodes, arcs oriented low → high so acyclicity holds
/// by construction.
fn arb_dag() -> impl Strategy<Value = Dag> {
    (2usize..24).prop_flat_map(|n| {
        vec((0u32..n as u32, 0u32..n as u32), 0..2 * n).prop_map(move |pairs| {
            let arcs: BTreeSet<(u32, u32)> = pairs
                .into_iter()
                .filter_map(|(a, b)| match a.cmp(&b) {
                    std::cmp::Ordering::Less => Some((a, b)),
                    std::cmp::Ordering::Greater => Some((b, a)),
                    std::cmp::Ordering::Equal => None,
                })
                .collect();
            let arcs: Vec<(u32, u32)> = arcs.into_iter().collect();
            Dag::from_arcs(n, &arcs).expect("low → high arcs are acyclic")
        })
    })
}

fn arb_backoff() -> impl Strategy<Value = Backoff> {
    prop_oneof![
        Just(Backoff::None),
        (1u32..8).prop_map(|d| Backoff::Fixed(d as f64 * 0.25)),
        (1u32..4).prop_map(|b| Backoff::Exponential {
            base: b as f64 * 0.1,
            factor: 2.0,
            cap: 10.0,
        }),
    ]
}

/// A random active fault configuration: probabilistic rate, permanent
/// fraction, retry budget, backoff, and sometimes pool churn or a
/// deterministic fail-first schedule.
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        (1u32..=40, 0u32..=25, 0u32..6),
        arb_backoff(),
        any::<bool>(),
        0u32..4,
    )
        .prop_map(|((rate, perm, retries), backoff, churn, sched)| {
            let mut model =
                FaultModel::with_rate(rate as f64 / 100.0).with_permanent(perm as f64 / 100.0);
            if churn {
                model = model.with_churn(20.0, 4.0);
            }
            for j in 0..sched {
                model = model.failing_first(NodeId(j), 1 + j % 2);
            }
            FaultConfig {
                model,
                retry: RetryPolicy {
                    max_attempts: retries + 1,
                    backoff,
                },
            }
        })
}

/// Replays a trace, asserting precedence: a job may only be assigned
/// once every parent has completed — which also implies no descendant of
/// a permanently failed job ever runs (its parent chain never
/// completes). Returns the per-job (assigned, completed) event counts.
fn check_precedence(dag: &Dag, trace: &[TraceEvent]) -> Result<(Vec<u32>, Vec<u32>), String> {
    let n = dag.num_nodes();
    let mut completed = vec![false; n];
    let mut assigned_count = vec![0u32; n];
    let mut completed_count = vec![0u32; n];
    let mut last_time = f64::NEG_INFINITY;
    for e in trace {
        let time = match e {
            TraceEvent::BatchArrived { time, .. }
            | TraceEvent::JobSubmitted { time, .. }
            | TraceEvent::JobEligible { time, .. }
            | TraceEvent::JobAssigned { time, .. }
            | TraceEvent::JobCompleted { time, .. }
            | TraceEvent::JobFailed { time, .. }
            | TraceEvent::JobRetried { time, .. }
            | TraceEvent::WorkerDown { time, .. }
            | TraceEvent::WorkerUp { time } => *time,
        };
        if time < last_time {
            return Err(format!("trace time went backwards at {e:?}"));
        }
        last_time = time;
        match e {
            TraceEvent::JobAssigned { job, .. } => {
                assigned_count[job.index()] += 1;
                for &p in dag.parents(*job) {
                    if !completed[p.index()] {
                        return Err(format!(
                            "job {job:?} assigned before parent {p:?} completed"
                        ));
                    }
                }
            }
            TraceEvent::JobCompleted { job, .. } => {
                completed[job.index()] = true;
                completed_count[job.index()] += 1;
            }
            _ => {}
        }
    }
    Ok((assigned_count, completed_count))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Precedence holds on every faulty run, and per-job event counts
    /// are consistent with the reported outcomes: completed jobs finish
    /// exactly once, unreachable jobs are never assigned, and
    /// failed-permanent jobs were assigned but never completed.
    #[test]
    fn precedence_and_outcome_consistency(
        dag in arb_dag(),
        faults in arb_faults(),
        seed in 0u64..1 << 48,
    ) {
        let model = GridModel::paper(0.4, 3.0);
        let out = simulate_faulty_traced(&dag, &PolicySpec::Fifo, &model, &faults, seed);
        let trace = out.trace.as_ref().expect("traced");
        let (assigned, completed) =
            check_precedence(&dag, trace).map_err(TestCaseError::fail)?;
        let outcomes = out.outcomes.as_ref().expect("fault runs report outcomes");
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                JobOutcome::Completed => {
                    prop_assert_eq!(completed[i], 1, "job {} completes once", i);
                    prop_assert!(assigned[i] >= 1);
                }
                JobOutcome::FailedPermanent => {
                    prop_assert_eq!(completed[i], 0);
                    prop_assert!(assigned[i] >= 1, "aborted job {} ran at least once", i);
                    prop_assert!(
                        assigned[i] <= faults.retry.max_attempts,
                        "job {} exceeded its retry budget",
                        i
                    );
                }
                JobOutcome::Unreachable => {
                    prop_assert_eq!(assigned[i], 0, "unreachable job {} must never run", i);
                    prop_assert_eq!(completed[i], 0);
                }
            }
        }
    }

    /// completed + failed_permanent + unreachable partitions the job
    /// set, the outcome vector agrees with the counters, and every
    /// unreachable job really has a failed ancestor.
    #[test]
    fn resolution_partitions_the_job_set(
        dag in arb_dag(),
        faults in arb_faults(),
        seed in 0u64..1 << 48,
    ) {
        let model = GridModel::paper(0.4, 3.0);
        let out = simulate_faulty(&dag, &PolicySpec::Fifo, &model, &faults, seed);
        prop_assert_eq!(
            out.completed + out.failed_permanent + out.unreachable,
            out.num_jobs
        );
        let outcomes = out.outcomes.as_ref().expect("fault runs report outcomes");
        let count = |o: JobOutcome| outcomes.iter().filter(|&&x| x == o).count();
        prop_assert_eq!(count(JobOutcome::Completed), out.completed);
        prop_assert_eq!(count(JobOutcome::FailedPermanent), out.failed_permanent);
        prop_assert_eq!(count(JobOutcome::Unreachable), out.unreachable);
        // Every unreachable job has a failed-permanent or unreachable
        // parent; every failed or completed job has all-completed parents.
        for u in dag.node_ids() {
            let parents = dag.parents(u);
            match outcomes[u.index()] {
                JobOutcome::Unreachable => prop_assert!(
                    parents
                        .iter()
                        .any(|p| outcomes[p.index()] != JobOutcome::Completed),
                    "unreachable {:?} with all parents completed",
                    u
                ),
                _ => prop_assert!(
                    parents
                        .iter()
                        .all(|p| outcomes[p.index()] == JobOutcome::Completed),
                    "{:?} ran without all parents completed",
                    u
                ),
            }
        }
    }

    /// An *inactive* fault model at rate 0 yields exactly the reliable
    /// engine's outcome on arbitrary dags and seeds.
    #[test]
    fn fault_rate_zero_is_identical(
        dag in arb_dag(),
        seed in 0u64..1 << 48,
        backoff in arb_backoff(),
    ) {
        let model = GridModel::paper(0.4, 3.0);
        let zero = FaultConfig {
            model: FaultModel::none(),
            retry: RetryPolicy { max_attempts: 4, backoff },
        };
        prop_assert!(!zero.is_active());
        let plain = simulate(&dag, &PolicySpec::Fifo, &model, seed);
        let faulty = simulate_faulty(&dag, &PolicySpec::Fifo, &model, &zero, seed);
        prop_assert_eq!(&plain, &faulty);
        let plain_traced = simulate_traced(&dag, &PolicySpec::Fifo, &model, seed);
        let faulty_traced =
            simulate_faulty_traced(&dag, &PolicySpec::Fifo, &model, &zero, seed);
        prop_assert_eq!(&plain_traced, &faulty_traced);
    }

    /// Makespan grows (statistically, averaged over a seed panel) with
    /// the fault rate, and the failure-set monotonicity of the hashed
    /// draws makes failed-attempt counts monotone per seed on chains.
    #[test]
    fn makespan_monotone_in_fault_rate(base_seed in 0u64..1 << 32) {
        let arcs: Vec<(u32, u32)> = (0..11).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_arcs(12, &arcs).unwrap();
        let model = GridModel::paper(0.3, 4.0);
        let cfg = |p: f64| FaultConfig {
            model: FaultModel::with_rate(p),
            retry: RetryPolicy::unlimited(),
        };
        let panel = |p: f64| -> f64 {
            (0..16)
                .map(|i| {
                    let seed = prio_stats::rng::derive_seed(base_seed, i);
                    simulate_faulty(&dag, &PolicySpec::Fifo, &model, &cfg(p), seed).makespan
                })
                .sum::<f64>()
                / 16.0
        };
        let m0 = panel(1e-9);
        let m1 = panel(0.15);
        let m2 = panel(0.35);
        prop_assert!(m1 >= m0 * 0.95, "rate 0.15 mean {} vs rate ~0 mean {}", m1, m0);
        prop_assert!(m2 >= m1 * 0.95, "rate 0.35 mean {} vs rate 0.15 mean {}", m2, m1);
        prop_assert!(m2 > m0, "rate 0.35 mean {} must exceed rate ~0 mean {}", m2, m0);
    }

    /// Per-seed, per-(job, attempt) failure draws are monotone in the
    /// rate: every attempt that fails at rate p also fails at q > p.
    #[test]
    fn failure_draws_monotone_in_rate(
        seed in 0u64..1 << 48,
        job in 0u32..1000,
        attempt in 1u32..50,
    ) {
        let lo = FaultModel::with_rate(0.2);
        let hi = FaultModel::with_rate(0.6);
        if lo.attempt_fails(seed, NodeId(job), attempt) {
            prop_assert!(hi.attempt_fails(seed, NodeId(job), attempt));
        }
    }
}

/// FNV-1a over the debug form of each event plus the makespan bits —
/// the exact recipe used to capture the pre-fault hashes below.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn trace_hash(trace: &[TraceEvent], makespan: f64) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for e in trace {
        h = fnv1a(format!("{e:?}").as_bytes(), h);
    }
    fnv1a(&makespan.to_bits().to_le_bytes(), h)
}

/// Fault-rate-0 runs are byte-identical to the reliable engine: these
/// hashes pin the traced output (FIFO, `GridModel::paper(1.0, 16.0)`,
/// seed 20060401) over the four paper workflows plus PRIO on AIRSN. Both
/// the plain entry point and `simulate_faulty` with an inactive config
/// must still produce them. Recaptured when schema v3 added the
/// `job_submitted`/`job_eligible` lifecycle events and worker ids —
/// trace *content* grew, but the RNG streams, makespans, and untraced
/// outcomes are unchanged from the pre-fault engine.
#[test]
fn paper_workflows_match_pre_fault_trace_hashes() {
    let workloads: [(&str, Dag, u64); 4] = [
        (
            "airsn",
            prio_workloads::airsn::airsn_paper(),
            0x6BBD570CCE521442,
        ),
        (
            "inspiral",
            prio_workloads::inspiral::inspiral_paper(),
            0xA7CF71B02F6DDDF7,
        ),
        (
            "montage",
            prio_workloads::montage::montage_paper(),
            0xDDD8BEFE025D9D3C,
        ),
        (
            "sdss",
            prio_workloads::spec::scaled_suite(0.1)
                .pop()
                .unwrap()
                .workflow
                .into_dag(),
            0xD2B2E8F54E0BE7BD,
        ),
    ];
    let model = GridModel::paper(1.0, 16.0);
    for (name, dag, expected) in &workloads {
        let out = simulate_traced(dag, &PolicySpec::Fifo, &model, 20060401);
        let h = trace_hash(out.trace.as_ref().unwrap(), out.makespan);
        assert_eq!(
            h, *expected,
            "{name}: reliable trace diverged from the pre-fault engine"
        );
        let faulty = simulate_faulty_traced(
            dag,
            &PolicySpec::Fifo,
            &model,
            &FaultConfig::none(),
            20060401,
        );
        let hf = trace_hash(faulty.trace.as_ref().unwrap(), faulty.makespan);
        assert_eq!(
            hf, *expected,
            "{name}: inactive fault config perturbed the trace"
        );
    }
    // PRIO on AIRSN pins the oblivious-policy path too.
    let dag = prio_workloads::airsn::airsn_paper();
    let prio = PolicySpec::Oblivious(prio_core::prio::prioritize(&dag).unwrap().schedule);
    let out = simulate_traced(&dag, &prio, &model, 20060401);
    assert_eq!(
        trace_hash(out.trace.as_ref().unwrap(), out.makespan),
        0xA8270C74B4974240,
        "airsn-prio: reliable trace diverged from the pre-fault engine"
    );
}
