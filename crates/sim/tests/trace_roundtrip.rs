//! Regression: a trace serialized to JSONL and replayed from the file must
//! match the in-memory [`Trace`] event for event — exercising **every**
//! event variant (`BatchArrived`, `JobSubmitted`, `JobEligible`,
//! `JobAssigned`, `JobCompleted`, `JobFailed`, `JobRetried`,
//! `WorkerDown`, `WorkerUp`), with
//! span/counter/meta/telemetry lines interleaved in the file (readers
//! must skip them) and every record tagged with the schema version.
//! A property suite generates arbitrary events and checks the JSON
//! round-trip plus the v1/v2/v3 version-acceptance rules.

use prio_graph::{Dag, NodeId};
use prio_obs::json::{parse, JsonValue, SCHEMA_VERSION};
use prio_obs::JsonlSink;
use prio_sim::engine::{simulate_faulty_traced, simulate_traced};
use prio_sim::trace::TraceEvent;
use prio_sim::trace_json::{
    event_from_json, event_to_json, read_trace, write_telemetry, write_trace,
};
use prio_sim::{FaultConfig, FaultModel, GridModel, PolicySpec, RetryPolicy};
use proptest::prelude::*;

/// The `TraceEvent` variant discriminants a full round-trip must cover.
fn variant_name(event: &TraceEvent) -> &'static str {
    match event {
        TraceEvent::BatchArrived { .. } => "batch_arrived",
        TraceEvent::JobSubmitted { .. } => "job_submitted",
        TraceEvent::JobEligible { .. } => "job_eligible",
        TraceEvent::JobAssigned { .. } => "job_assigned",
        TraceEvent::JobCompleted { .. } => "job_completed",
        TraceEvent::JobFailed { .. } => "job_failed",
        TraceEvent::JobRetried { .. } => "job_retried",
        TraceEvent::WorkerDown { .. } => "worker_down",
        TraceEvent::WorkerUp { .. } => "worker_up",
    }
}

fn diamond_chain() -> Dag {
    // Two diamonds in series: enough structure for assignments, stalls,
    // and (with failures) retries.
    Dag::from_arcs(
        7,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ],
    )
    .unwrap()
}

#[test]
fn jsonl_trace_replays_event_for_event() {
    let dag = diamond_chain();
    // A high failure probability so JobFailed events actually occur.
    let model = GridModel::paper(0.8, 2.0).with_failures(0.4);

    // Find a seed whose run contains every event variant (deterministic:
    // the first qualifying seed never changes). Arrivals, assignments,
    // and completions occur in any finished run; failures need p > 0.
    let (seed, outcome) = (0..100)
        .find_map(|seed| {
            let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, seed);
            let trace = out.trace.as_ref().expect("traced run records a trace");
            let covered: std::collections::BTreeSet<_> = trace.iter().map(variant_name).collect();
            (covered.len() == 6).then_some((seed, out))
        })
        .expect("some seed under p=0.4 must cover all six reliable-path event variants");
    let trace = outcome.trace.expect("traced run records a trace");
    let telemetry = outcome.telemetry.expect("traced run records telemetry");

    // Serialize through the sink with non-event lines interleaved, exactly
    // as `prio simulate --trace-out` writes them.
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "prio_sim_roundtrip_{}_{seed}.jsonl",
        std::process::id()
    ));
    {
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.write_meta("simulate", &format!("seed={seed}"))
            .unwrap();
        write_trace(&sink, &trace).unwrap();
        write_telemetry(&sink, "fifo", &telemetry).unwrap();
        sink.write_span_snapshot().unwrap();
        sink.write_metrics_snapshot().unwrap();
        sink.flush().unwrap();
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Every line of the file is a JSON object carrying a `type` field and
    // a schema version we can read.
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        assert!(
            v.get("type").and_then(JsonValue::as_str).is_some(),
            "{line:?}"
        );
        let version = v.get("v").and_then(JsonValue::as_u64);
        assert_eq!(version, Some(SCHEMA_VERSION), "untagged record {line:?}");
    }

    // The replayed trace equals the in-memory one, event for event.
    let replayed = read_trace(&text).unwrap();
    assert_eq!(replayed, trace);

    // And every variant made it through as a typed line.
    let typed: std::collections::BTreeSet<_> = text
        .lines()
        .filter_map(|l| {
            parse(l)
                .unwrap()
                .get("type")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .collect();
    for kind in [
        "batch_arrived",
        "job_submitted",
        "job_eligible",
        "job_assigned",
        "job_completed",
        "job_failed",
        "ts",
        "hist",
    ] {
        assert!(typed.contains(kind), "{kind} must appear in the JSONL file");
    }
}

#[test]
fn faulty_runs_round_trip_with_all_fault_event_kinds() {
    let dag = diamond_chain();
    let model = GridModel::paper(0.8, 2.0);
    // Transient faults with backoff plus pool churn: the trace must
    // contain JobFailed, JobRetried, WorkerDown, and WorkerUp events.
    let faults = FaultConfig {
        model: FaultModel::with_rate(0.3).with_churn(15.0, 3.0),
        retry: RetryPolicy {
            max_attempts: 50,
            backoff: prio_sim::Backoff::Fixed(0.25),
        },
    };
    let (seed, outcome) = (0..200)
        .find_map(|seed| {
            let out = simulate_faulty_traced(&dag, &PolicySpec::Fifo, &model, &faults, seed);
            let trace = out.trace.as_ref().expect("traced");
            let covered: std::collections::BTreeSet<_> = trace.iter().map(variant_name).collect();
            (covered.len() == 9).then_some((seed, out))
        })
        .expect("some seed must cover all nine event variants");
    let trace = outcome.trace.expect("traced");
    let telemetry = outcome.telemetry.expect("traced");

    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "prio_sim_fault_roundtrip_{}_{seed}.jsonl",
        std::process::id()
    ));
    {
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.write_meta("simulate", &format!("seed={seed}"))
            .unwrap();
        write_trace(&sink, &trace).unwrap();
        write_telemetry(&sink, "fifo", &telemetry).unwrap();
        sink.flush().unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        assert_eq!(
            v.get("v").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION),
            "untagged record {line:?}"
        );
    }
    assert_eq!(read_trace(&text).unwrap(), trace);

    // Fault histograms are non-empty on this run, so their hist records
    // appear alongside the latency ones.
    let hist_names: std::collections::BTreeSet<_> = text
        .lines()
        .filter_map(|l| {
            let v = parse(l).ok()?;
            if v.get("type").and_then(JsonValue::as_str) == Some("hist") {
                v.get("name").and_then(JsonValue::as_str).map(str::to_owned)
            } else {
                None
            }
        })
        .collect();
    for name in [
        "job_wait_milli",
        "job_service_milli",
        "job_attempts",
        "wasted_work_milli",
    ] {
        assert!(hist_names.contains(name), "{name} missing from telemetry");
    }
}

/// A plausible finite simulated time: non-negative, round-trips exactly
/// through `Display` (any finite f64 does; this keeps values readable).
fn arb_time() -> impl Strategy<Value = f64> {
    (0u64..100_000_000).prop_map(|t| t as f64 / 64.0)
}

fn arb_job() -> impl Strategy<Value = NodeId> {
    (0u32..1_000_000).prop_map(NodeId)
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (arb_time(), 0u64..100_000, 0usize..10_000, any::<bool>()).prop_map(
            |(time, size, assigned, stalled)| TraceEvent::BatchArrived {
                time,
                size,
                assigned,
                stalled,
            }
        ),
        (arb_time(), arb_job()).prop_map(|(time, job)| TraceEvent::JobSubmitted { time, job }),
        (arb_time(), arb_job()).prop_map(|(time, job)| TraceEvent::JobEligible { time, job }),
        (arb_time(), arb_job(), arb_time(), 0u64..100_000).prop_map(
            |(time, job, completes_at, worker)| TraceEvent::JobAssigned {
                time,
                job,
                completes_at,
                worker,
            }
        ),
        (arb_time(), arb_job()).prop_map(|(time, job)| TraceEvent::JobCompleted { time, job }),
        (arb_time(), arb_job()).prop_map(|(time, job)| TraceEvent::JobFailed { time, job }),
        (arb_time(), arb_job(), 1u32..10_000, arb_time()).prop_map(
            |(time, job, attempt, delay)| TraceEvent::JobRetried {
                time,
                job,
                attempt,
                delay,
            }
        ),
        (arb_time(), 0u64..100_000).prop_map(|(time, lost)| TraceEvent::WorkerDown { time, lost }),
        arb_time().prop_map(|time| TraceEvent::WorkerUp { time }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated event — fault kinds included — survives the JSON
    /// round-trip exactly and carries the schema version tag.
    #[test]
    fn arbitrary_events_round_trip(event in arb_event()) {
        let line = event_to_json(&event);
        let v = parse(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(v.get("v").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
        let back = event_from_json(&line).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, Some(event));
    }

    /// Version-acceptance rules: records tagged with any version up to
    /// the current schema (or untagged, i.e. v1) parse; records claiming
    /// a newer schema are rejected as errors, not skipped.
    #[test]
    fn version_acceptance_rules_hold(event in arb_event(), bump in 1u64..5) {
        let line = event_to_json(&event);
        // Accepted: tags 1..=SCHEMA_VERSION.
        for version in 1..=SCHEMA_VERSION {
            let retagged = line.replace(
                &format!("\"v\":{SCHEMA_VERSION}"),
                &format!("\"v\":{version}"),
            );
            let back = event_from_json(&retagged).map_err(TestCaseError::fail)?;
            prop_assert_eq!(back, Some(event));
        }
        // Accepted: no tag at all (v1 writers).
        let untagged = line.replace(&format!("\"v\":{SCHEMA_VERSION},"), "");
        let back = event_from_json(&untagged).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, Some(event));
        // Rejected: any strictly newer version.
        let future = line.replace(
            &format!("\"v\":{SCHEMA_VERSION}"),
            &format!("\"v\":{}", SCHEMA_VERSION + bump),
        );
        let err = event_from_json(&future);
        prop_assert!(err.is_err(), "future schema must be an error: {:?}", err);
        prop_assert!(err.unwrap_err().contains("newer"));
    }
}

#[test]
fn reliable_runs_round_trip_without_failures() {
    let dag = diamond_chain();
    let model = GridModel::paper(0.5, 3.0);
    let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, 7);
    let trace = out.trace.expect("traced");
    let text: String = trace
        .iter()
        .map(|e| prio_sim::trace_json::event_to_json(e) + "\n")
        .collect();
    assert_eq!(read_trace(&text).unwrap(), trace);
    assert!(!trace
        .iter()
        .any(|e| matches!(e, TraceEvent::JobFailed { .. })));
}
