//! Regression: a trace serialized to JSONL and replayed from the file must
//! match the in-memory [`Trace`] event for event — including `JobFailed`
//! events from the unreliable-worker extension, and with span/counter/meta
//! lines interleaved in the file (readers must skip them).

use prio_graph::Dag;
use prio_obs::json::{parse, JsonValue};
use prio_obs::JsonlSink;
use prio_sim::engine::simulate_traced;
use prio_sim::trace::TraceEvent;
use prio_sim::trace_json::{read_trace, write_trace};
use prio_sim::{GridModel, PolicySpec};

fn diamond_chain() -> Dag {
    // Two diamonds in series: enough structure for assignments, stalls,
    // and (with failures) retries.
    Dag::from_arcs(
        7,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ],
    )
    .unwrap()
}

#[test]
fn jsonl_trace_replays_event_for_event() {
    let dag = diamond_chain();
    // A high failure probability so JobFailed events actually occur.
    let model = GridModel::paper(0.8, 2.0).with_failures(0.4);

    // Find a seed whose run contains at least one failure (deterministic:
    // the first qualifying seed never changes).
    let (seed, trace) = (0..100)
        .find_map(|seed| {
            let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, seed);
            let trace = out.trace.expect("traced run records a trace");
            trace
                .iter()
                .any(|e| matches!(e, TraceEvent::JobFailed { .. }))
                .then_some((seed, trace))
        })
        .expect("some seed under p=0.4 must produce a failure");

    // Serialize through the sink with non-event lines interleaved, exactly
    // as `prio simulate --trace-out` writes them.
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "prio_sim_roundtrip_{}_{seed}.jsonl",
        std::process::id()
    ));
    {
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.write_meta("simulate", &format!("seed={seed}"))
            .unwrap();
        write_trace(&sink, &trace).unwrap();
        sink.write_span_snapshot().unwrap();
        sink.write_metrics_snapshot().unwrap();
        sink.flush().unwrap();
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Every line of the file is a JSON object carrying a `type` field.
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        assert!(
            v.get("type").and_then(JsonValue::as_str).is_some(),
            "{line:?}"
        );
    }

    // The replayed trace equals the in-memory one, event for event.
    let replayed = read_trace(&text).unwrap();
    assert_eq!(replayed, trace);

    // And the failure made it through as a typed line.
    assert!(
        text.lines().any(|l| {
            parse(l).unwrap().get("type").and_then(JsonValue::as_str) == Some("job_failed")
        }),
        "JobFailed must appear in the JSONL output"
    );
}

#[test]
fn reliable_runs_round_trip_without_failures() {
    let dag = diamond_chain();
    let model = GridModel::paper(0.5, 3.0);
    let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, 7);
    let trace = out.trace.expect("traced");
    let text: String = trace
        .iter()
        .map(|e| prio_sim::trace_json::event_to_json(e) + "\n")
        .collect();
    assert_eq!(read_trace(&text).unwrap(), trace);
    assert!(!trace
        .iter()
        .any(|e| matches!(e, TraceEvent::JobFailed { .. })));
}
