//! Regression: a trace serialized to JSONL and replayed from the file must
//! match the in-memory [`Trace`] event for event — exercising **every**
//! event variant (`BatchArrived`, `JobAssigned`, `JobCompleted`,
//! `JobFailed`), with span/counter/meta/telemetry lines interleaved in the
//! file (readers must skip them) and every record tagged with the schema
//! version.

use prio_graph::Dag;
use prio_obs::json::{parse, JsonValue, SCHEMA_VERSION};
use prio_obs::JsonlSink;
use prio_sim::engine::simulate_traced;
use prio_sim::trace::TraceEvent;
use prio_sim::trace_json::{read_trace, write_telemetry, write_trace};
use prio_sim::{GridModel, PolicySpec};

/// The `TraceEvent` variant discriminants a full round-trip must cover.
fn variant_name(event: &TraceEvent) -> &'static str {
    match event {
        TraceEvent::BatchArrived { .. } => "batch_arrived",
        TraceEvent::JobAssigned { .. } => "job_assigned",
        TraceEvent::JobCompleted { .. } => "job_completed",
        TraceEvent::JobFailed { .. } => "job_failed",
    }
}

fn diamond_chain() -> Dag {
    // Two diamonds in series: enough structure for assignments, stalls,
    // and (with failures) retries.
    Dag::from_arcs(
        7,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ],
    )
    .unwrap()
}

#[test]
fn jsonl_trace_replays_event_for_event() {
    let dag = diamond_chain();
    // A high failure probability so JobFailed events actually occur.
    let model = GridModel::paper(0.8, 2.0).with_failures(0.4);

    // Find a seed whose run contains every event variant (deterministic:
    // the first qualifying seed never changes). Arrivals, assignments,
    // and completions occur in any finished run; failures need p > 0.
    let (seed, outcome) = (0..100)
        .find_map(|seed| {
            let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, seed);
            let trace = out.trace.as_ref().expect("traced run records a trace");
            let covered: std::collections::BTreeSet<_> = trace.iter().map(variant_name).collect();
            (covered.len() == 4).then_some((seed, out))
        })
        .expect("some seed under p=0.4 must cover all four event variants");
    let trace = outcome.trace.expect("traced run records a trace");
    let telemetry = outcome.telemetry.expect("traced run records telemetry");

    // Serialize through the sink with non-event lines interleaved, exactly
    // as `prio simulate --trace-out` writes them.
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "prio_sim_roundtrip_{}_{seed}.jsonl",
        std::process::id()
    ));
    {
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.write_meta("simulate", &format!("seed={seed}"))
            .unwrap();
        write_trace(&sink, &trace).unwrap();
        write_telemetry(&sink, "fifo", &telemetry).unwrap();
        sink.write_span_snapshot().unwrap();
        sink.write_metrics_snapshot().unwrap();
        sink.flush().unwrap();
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    // Every line of the file is a JSON object carrying a `type` field and
    // a schema version we can read.
    for line in text.lines() {
        let v = parse(line).unwrap_or_else(|e| panic!("invalid JSONL {line:?}: {e}"));
        assert!(
            v.get("type").and_then(JsonValue::as_str).is_some(),
            "{line:?}"
        );
        let version = v.get("v").and_then(JsonValue::as_u64);
        assert_eq!(version, Some(SCHEMA_VERSION), "untagged record {line:?}");
    }

    // The replayed trace equals the in-memory one, event for event.
    let replayed = read_trace(&text).unwrap();
    assert_eq!(replayed, trace);

    // And every variant made it through as a typed line.
    let typed: std::collections::BTreeSet<_> = text
        .lines()
        .filter_map(|l| {
            parse(l)
                .unwrap()
                .get("type")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        })
        .collect();
    for kind in [
        "batch_arrived",
        "job_assigned",
        "job_completed",
        "job_failed",
        "ts",
        "hist",
    ] {
        assert!(typed.contains(kind), "{kind} must appear in the JSONL file");
    }
}

#[test]
fn reliable_runs_round_trip_without_failures() {
    let dag = diamond_chain();
    let model = GridModel::paper(0.5, 3.0);
    let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, 7);
    let trace = out.trace.expect("traced");
    let text: String = trace
        .iter()
        .map(|e| prio_sim::trace_json::event_to_json(e) + "\n")
        .collect();
    assert_eq!(read_trace(&text).unwrap(), trace);
    assert!(!trace
        .iter()
        .any(|e| matches!(e, TraceEvent::JobFailed { .. })));
}
