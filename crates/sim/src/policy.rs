//! Assignment policies: which eligible job is handed to the next worker.

use prio_core::Schedule;
use prio_graph::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Specification of a policy (owned data, reusable across replications).
#[derive(Debug, Clone)]
pub enum PolicySpec {
    /// Oblivious: a fixed total order on jobs; eligible jobs are assigned
    /// smallest-order-position first. Instantiated with the PRIO schedule
    /// this is the paper's PRIO algorithm.
    Oblivious(Schedule),
    /// FIFO: eligible jobs are assigned in the order they became eligible
    /// (DAGMan's behavior).
    Fifo,
    /// The §3.2 integration shortcoming, made measurable: eligible jobs
    /// enter DAGMan's internal queue in FIFO order and at most `maxjobs`
    /// of them are forwarded to the Condor queue, where the oblivious
    /// priorities apply; workers are served from the Condor queue only.
    /// With `maxjobs = usize::MAX` this is [`PolicySpec::Oblivious`];
    /// with `maxjobs = 1` priorities are inert and it degenerates to
    /// FIFO.
    ThrottledOblivious {
        /// The priority order (e.g. the PRIO schedule).
        schedule: Schedule,
        /// DAGMan's `-maxjobs` forwarding throttle (≥ 1).
        maxjobs: usize,
    },
}

impl PolicySpec {
    /// Short display name ("PRIO-style oblivious" orders are just called
    /// by their schedule).
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Oblivious(_) => "oblivious",
            PolicySpec::Fifo => "FIFO",
            PolicySpec::ThrottledOblivious { .. } => "throttled oblivious",
        }
    }

    /// Creates the per-run queue state.
    pub(crate) fn make_queue(&self, num_jobs: usize) -> PolicyQueue {
        match self {
            PolicySpec::Oblivious(schedule) => {
                assert_eq!(
                    schedule.len(),
                    num_jobs,
                    "oblivious schedule must cover the dag"
                );
                PolicyQueue::Oblivious {
                    position: schedule.positions(),
                    heap: BinaryHeap::new(),
                }
            }
            PolicySpec::Fifo => PolicyQueue::Fifo {
                queue: VecDeque::new(),
            },
            PolicySpec::ThrottledOblivious { schedule, maxjobs } => {
                assert_eq!(
                    schedule.len(),
                    num_jobs,
                    "oblivious schedule must cover the dag"
                );
                assert!(*maxjobs >= 1, "maxjobs must be at least 1");
                PolicyQueue::Throttled {
                    position: schedule.positions(),
                    maxjobs: *maxjobs,
                    dagman: VecDeque::new(),
                    condor: BinaryHeap::new(),
                }
            }
        }
    }
}

/// Mutable queue of eligible-but-unassigned jobs for one simulation run.
#[derive(Debug)]
pub(crate) enum PolicyQueue {
    Oblivious {
        position: Vec<usize>,
        heap: BinaryHeap<Reverse<(usize, NodeId)>>,
    },
    Fifo {
        queue: VecDeque<NodeId>,
    },
    Throttled {
        position: Vec<usize>,
        maxjobs: usize,
        /// DAGMan's internal queue (FIFO, priorities not honored here).
        dagman: VecDeque<NodeId>,
        /// The Condor queue (priority-ordered, at most `maxjobs` entries).
        condor: BinaryHeap<Reverse<(usize, NodeId)>>,
    },
}

impl PolicyQueue {
    /// A job just became eligible.
    pub fn push(&mut self, job: NodeId) {
        match self {
            PolicyQueue::Oblivious { position, heap } => {
                heap.push(Reverse((position[job.index()], job)));
            }
            PolicyQueue::Fifo { queue } => queue.push_back(job),
            PolicyQueue::Throttled {
                position,
                maxjobs,
                dagman,
                condor,
            } => {
                dagman.push_back(job);
                refill(position, *maxjobs, dagman, condor);
            }
        }
    }

    /// Takes the next job to assign, if any.
    pub fn pop(&mut self) -> Option<NodeId> {
        match self {
            PolicyQueue::Oblivious { heap, .. } => heap.pop().map(|Reverse((_, j))| j),
            PolicyQueue::Fifo { queue } => queue.pop_front(),
            PolicyQueue::Throttled {
                position,
                maxjobs,
                dagman,
                condor,
            } => {
                let job = condor.pop().map(|Reverse((_, j))| j);
                if job.is_some() {
                    refill(position, *maxjobs, dagman, condor);
                }
                job
            }
        }
    }

    /// Number of jobs assignable *right now* (for the throttled policy,
    /// only the Condor-queue residents — the DAGMan queue is invisible to
    /// the matchmaker, which is exactly the §3.2 shortcoming).
    pub fn len(&self) -> usize {
        match self {
            PolicyQueue::Oblivious { heap, .. } => heap.len(),
            PolicyQueue::Fifo { queue } => queue.len(),
            PolicyQueue::Throttled { condor, .. } => condor.len(),
        }
    }
}

/// Forwards DAGMan-queue jobs into the Condor queue up to the throttle.
fn refill(
    position: &[usize],
    maxjobs: usize,
    dagman: &mut VecDeque<NodeId>,
    condor: &mut BinaryHeap<Reverse<(usize, NodeId)>>,
) {
    while condor.len() < maxjobs {
        match dagman.pop_front() {
            Some(job) => condor.push(Reverse((position[job.index()], job))),
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::Dag;

    #[test]
    fn oblivious_pops_by_schedule_position() {
        let dag = Dag::from_arcs(3, &[]).unwrap();
        let sched = Schedule::new(&dag, vec![NodeId(2), NodeId(0), NodeId(1)]).unwrap();
        let spec = PolicySpec::Oblivious(sched);
        let mut q = spec.make_queue(3);
        q.push(NodeId(0));
        q.push(NodeId(1));
        q.push(NodeId(2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert_eq!(q.pop(), Some(NodeId(1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut q = PolicySpec::Fifo.make_queue(3);
        q.push(NodeId(1));
        q.push(NodeId(0));
        assert_eq!(q.pop(), Some(NodeId(1)));
        q.push(NodeId(2));
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "cover the dag")]
    fn oblivious_schedule_must_match_dag_size() {
        let dag = Dag::from_arcs(2, &[]).unwrap();
        let sched = Schedule::new(&dag, vec![NodeId(0), NodeId(1)]).unwrap();
        PolicySpec::Oblivious(sched).make_queue(5);
    }

    #[test]
    fn throttled_honors_priorities_only_inside_the_condor_queue() {
        let dag = Dag::from_arcs(4, &[]).unwrap();
        // Priority order: 3, 2, 1, 0.
        let sched = Schedule::new(&dag, vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]).unwrap();
        let spec = PolicySpec::ThrottledOblivious {
            schedule: sched,
            maxjobs: 2,
        };
        let mut q = spec.make_queue(4);
        // Jobs become eligible in FIFO order 0, 1, 2, 3; only two fit in
        // the Condor queue, so the high-priority 3 waits in DAGMan.
        for i in 0..4 {
            q.push(NodeId(i));
        }
        assert_eq!(q.len(), 2, "Condor queue holds maxjobs entries");
        // Of {0, 1}, the higher-priority 1 is assigned first — but NOT 3.
        assert_eq!(q.pop(), Some(NodeId(1)));
        // Slot freed: 2 was forwarded; of {0, 2}, 2 wins.
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.pop(), Some(NodeId(3)));
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn throttled_with_huge_maxjobs_equals_oblivious() {
        let dag = Dag::from_arcs(3, &[]).unwrap();
        let sched = Schedule::new(&dag, vec![NodeId(2), NodeId(0), NodeId(1)]).unwrap();
        let spec = PolicySpec::ThrottledOblivious {
            schedule: sched,
            maxjobs: usize::MAX,
        };
        let mut q = spec.make_queue(3);
        for i in 0..3 {
            q.push(NodeId(i));
        }
        assert_eq!(q.pop(), Some(NodeId(2)));
        assert_eq!(q.pop(), Some(NodeId(0)));
        assert_eq!(q.pop(), Some(NodeId(1)));
    }
}
