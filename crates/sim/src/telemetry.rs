//! Per-run simulator telemetry: the dynamic state the paper's evaluation
//! reasons about, sampled at every processed event.
//!
//! Four time series track the shape of a run over simulated time —
//! the eligible-job pool `E_Σ(t)` (eligible-or-running jobs, the
//! quantity PRIO maximizes), the ready queue (eligible and unassigned),
//! parked idle workers (rollover ablation; 0 under the paper's Discard
//! model), and running utilization (jobs assigned / requests arrived) —
//! and two histograms capture per-job latencies: *wait* (eligible →
//! assigned) and *service* (assigned → completed), recorded in
//! milli-timeunits ([`TIME_SCALE`]).
//!
//! Collection happens only in traced runs
//! ([`crate::engine::simulate_traced`]); it is deterministic per seed and
//! independent of how many threads drive surrounding replications, so
//! serial and `--threads` invocations report identical telemetry.

use prio_obs::hist::Histogram;
use prio_obs::timeseries::TimeSeries;

/// Simulated times are multiplied by this before entering a histogram
/// (`u64` milli-timeunits: a mean-1.0 job runtime records as ~1000).
pub const TIME_SCALE: f64 = 1000.0;

/// Stored samples per time series; longer runs downsample themselves.
const SERIES_CAPACITY: usize = 512;

/// The telemetry of one simulated run.
#[derive(Debug, Clone)]
pub struct SimTelemetry {
    /// Eligible-or-running jobs over simulated time (`E_Σ(t)`).
    pub eligible_pool: TimeSeries,
    /// Eligible, unassigned jobs over simulated time.
    pub ready_queue: TimeSeries,
    /// Parked workers over simulated time (rollover ablation only).
    pub idle_workers: TimeSeries,
    /// Running utilization: jobs assigned so far / requests so far.
    pub utilization: TimeSeries,
    /// Eligible → assigned latency per assignment, milli-timeunits.
    pub job_wait: Histogram,
    /// Assigned → completed latency per completion, milli-timeunits.
    pub job_service: Histogram,
    /// Attempts per resolved job (fault-injected runs only; empty under
    /// the reliable model).
    pub job_attempts: Histogram,
    /// Simulated time lost per failed attempt, milli-timeunits (empty on
    /// failure-free runs).
    pub wasted_work: Histogram,
}

impl Default for SimTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTelemetry {
    /// Empty telemetry with the default series capacity.
    pub fn new() -> SimTelemetry {
        SimTelemetry {
            eligible_pool: TimeSeries::new(SERIES_CAPACITY),
            ready_queue: TimeSeries::new(SERIES_CAPACITY),
            idle_workers: TimeSeries::new(SERIES_CAPACITY),
            utilization: TimeSeries::new(SERIES_CAPACITY),
            job_wait: Histogram::new(),
            job_service: Histogram::new(),
            job_attempts: Histogram::new(),
            wasted_work: Histogram::new(),
        }
    }

    /// Records one sampling step at simulated time `t`.
    pub fn record_step(&mut self, t: f64, eligible: usize, ready: usize, idle: u64, util: f64) {
        self.eligible_pool.push(t, eligible as f64);
        self.ready_queue.push(t, ready as f64);
        self.idle_workers.push(t, idle as f64);
        self.utilization.push(t, util);
    }

    /// Records one job's eligible → assigned wait.
    pub fn record_wait(&mut self, wait: f64) {
        self.job_wait.record_mut(scale_time(wait));
    }

    /// Records one job's assigned → completed service time.
    pub fn record_service(&mut self, service: f64) {
        self.job_service.record_mut(scale_time(service));
    }

    /// Records how many attempts a job needed before it resolved
    /// (fault-injected runs only).
    pub fn record_attempts(&mut self, attempts: u32) {
        self.job_attempts.record_mut(attempts as u64);
    }

    /// Records the simulated time lost to one failed attempt.
    pub fn record_waste(&mut self, waste: f64) {
        self.wasted_work.record_mut(scale_time(waste));
    }

    /// The four series with their canonical record names, in emission
    /// order.
    pub fn series(&self) -> [(&'static str, &TimeSeries); 4] {
        [
            ("eligible_pool", &self.eligible_pool),
            ("ready_queue", &self.ready_queue),
            ("idle_workers", &self.idle_workers),
            ("utilization", &self.utilization),
        ]
    }

    /// All histograms with their canonical record names (the `_milli`
    /// suffix records the [`TIME_SCALE`] unit), in emission order. The
    /// fault histograms stay empty on failure-free runs; serialization
    /// skips empty histograms so reliable-run artifacts are unchanged.
    pub fn histograms(&self) -> [(&'static str, &Histogram); 4] {
        [
            ("job_wait_milli", &self.job_wait),
            ("job_service_milli", &self.job_service),
            ("job_attempts", &self.job_attempts),
            ("wasted_work_milli", &self.wasted_work),
        ]
    }
}

/// A simulated time as histogram milli-timeunits.
fn scale_time(t: f64) -> u64 {
    (t.max(0.0) * TIME_SCALE).round() as u64
}

impl PartialEq for SimTelemetry {
    fn eq(&self, other: &Self) -> bool {
        self.series()
            .iter()
            .zip(other.series().iter())
            .all(|((_, a), (_, b))| a == b)
            && self
                .histograms()
                .iter()
                .zip(other.histograms().iter())
                .all(|((_, a), (_, b))| a.snapshot() == b.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_feed_all_four_series() {
        let mut t = SimTelemetry::new();
        t.record_step(0.0, 3, 2, 0, 0.0);
        t.record_step(1.0, 5, 1, 2, 0.5);
        for (name, series) in t.series() {
            assert_eq!(series.pushed(), 2, "{name}");
        }
        assert_eq!(t.eligible_pool.digest().peak, 5.0);
        assert_eq!(t.idle_workers.digest().last_v, 2.0);
        assert_eq!(t.utilization.digest().last_v, 0.5);
    }

    #[test]
    fn latencies_scale_to_milli_timeunits() {
        let mut t = SimTelemetry::new();
        t.record_wait(1.0);
        t.record_service(0.25);
        assert_eq!(t.job_wait.summary().max, 1000);
        assert_eq!(t.job_service.summary().max, 250);
        // Tiny negative rounding artifacts clamp to zero.
        t.record_wait(-1e-12);
        assert_eq!(t.job_wait.count(), 2);
    }

    #[test]
    fn equality_compares_contents() {
        let build = || {
            let mut t = SimTelemetry::new();
            t.record_step(0.5, 1, 1, 0, 0.1);
            t.record_wait(0.5);
            t
        };
        assert_eq!(build(), build());
        let mut other = build();
        other.record_service(1.0);
        assert_ne!(build(), other);
    }
}
