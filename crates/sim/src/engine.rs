//! The event-driven grid simulator (§4.1).
//!
//! Two event kinds drive the clock: *batch arrivals* (workers requesting
//! jobs; unfilled requests are discarded) and *job completions* (results
//! returned, possibly rendering children eligible). The run ends when all
//! jobs have completed; the makespan is the last completion time.
//!
//! Determinism: all randomness comes from the seeded RNG, and events are
//! processed in time order with completions winning ties, so a run is a
//! pure function of `(dag, policy, model, seed)`.

use crate::metrics::RunMetrics;
use crate::model::{GridModel, UnfilledRequests};
use crate::policy::PolicySpec;
use crate::telemetry::SimTelemetry;
use crate::trace::{Trace, TraceEvent};
use prio_graph::{Dag, NodeId};
use prio_stats::seeded_rng;
use rand::Rng as _;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered f64 for the completion-event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The raw counters of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Time at which the last job completed (0 for an empty dag).
    pub makespan: f64,
    /// Batches that arrived up to and including the batch that assigned
    /// the last job.
    pub batches_observed: u64,
    /// Among those, batches that found pending work but no eligible
    /// unassigned job ("stalls").
    pub stalled_batches: u64,
    /// Total worker requests in the observed batches.
    pub total_requests: u64,
    /// Number of jobs in the dag.
    pub num_jobs: usize,
    /// Event trace, when requested.
    pub trace: Option<Trace>,
    /// Time-series and latency telemetry, when requested (traced runs).
    pub telemetry: Option<SimTelemetry>,
}

impl SimOutcome {
    /// Derives the paper's three metrics from the counters.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            execution_time: self.makespan,
            stall_probability: if self.batches_observed == 0 {
                0.0
            } else {
                self.stalled_batches as f64 / self.batches_observed as f64
            },
            utilization: if self.total_requests == 0 {
                0.0
            } else {
                self.num_jobs as f64 / self.total_requests as f64
            },
        }
    }
}

/// Bookkeeping for telemetry collection during a traced run: the
/// telemetry itself plus per-job timestamps used to derive wait and
/// service latencies, and the running assignment count feeding the
/// utilization series.
struct TelemetryState {
    telemetry: SimTelemetry,
    eligible_at: Vec<f64>,
    assigned_at: Vec<f64>,
    assigned_total: u64,
}

impl TelemetryState {
    /// Records a job assignment at time `t`: its eligible → assigned wait
    /// and the timestamp its eventual service time is measured from.
    fn record_assignment(&mut self, t: f64, job: NodeId) {
        self.telemetry
            .record_wait(t - self.eligible_at[job.index()]);
        self.assigned_at[job.index()] = t;
        self.assigned_total += 1;
    }

    /// Samples all four series at time `t`. Utilization is the running
    /// assigned / requested ratio (0 until the first request arrives).
    fn record_step(&mut self, t: f64, eligible: usize, ready: usize, idle: u64, requests: u64) {
        let util = if requests == 0 {
            0.0
        } else {
            self.assigned_total as f64 / requests as f64
        };
        self.telemetry.record_step(t, eligible, ready, idle, util);
    }
}

/// Simulates one execution of `dag` under `policy` and `model` with the
/// given `seed`.
pub fn simulate(dag: &Dag, policy: &PolicySpec, model: &GridModel, seed: u64) -> SimOutcome {
    run(dag, policy, model, seed, false)
}

/// Like [`simulate`] but records a full event trace and per-step
/// telemetry ([`SimTelemetry`]) — slower; for `--trace-out` and tests.
pub fn simulate_traced(dag: &Dag, policy: &PolicySpec, model: &GridModel, seed: u64) -> SimOutcome {
    run(dag, policy, model, seed, true)
}

fn run(dag: &Dag, policy: &PolicySpec, model: &GridModel, seed: u64, traced: bool) -> SimOutcome {
    let n = dag.num_nodes();
    let mut rng = seeded_rng(seed);
    let interarrival = model.interarrival();
    let runtime = model.runtime();
    let failures = model.failure_probability;

    let mut queue = policy.make_queue(n);
    let mut missing_parents: Vec<u32> = dag.node_ids().map(|u| dag.in_degree(u) as u32).collect();
    for u in dag.sources() {
        queue.push(u);
    }

    let mut completions: BinaryHeap<Reverse<(Time, NodeId)>> = BinaryHeap::new();
    let mut trace: Option<Trace> = if traced { Some(Vec::new()) } else { None };
    // Telemetry rides along only on traced runs so the plain `simulate`
    // hot path allocates nothing extra. `eligible_at` starts at 0.0
    // (sources are eligible from the start) and is overwritten whenever a
    // job (re-)enters the ready queue.
    let mut telem: Option<TelemetryState> = traced.then(|| TelemetryState {
        telemetry: SimTelemetry::new(),
        eligible_at: vec![0.0; n],
        assigned_at: vec![0.0; n],
        assigned_total: 0,
    });

    let mut in_flight = 0usize;
    let mut completed = 0usize;
    let mut makespan = 0.0f64;
    let mut batches_observed = 0u64;
    let mut stalled_batches = 0u64;
    let mut total_requests = 0u64;
    // Parked workers (rollover ablation only; stays 0 under Discard).
    let wait_mode = model.unfilled == UnfilledRequests::Wait;
    let mut idle_workers = 0u64;

    // The first batch arrives at time 0.
    let mut next_batch = 0.0f64;

    // Observability tallies are accumulated locally and flushed to the
    // global registries once per run, so the hot loop touches no atomics.
    let mut events_processed = 0u64;
    let mut heap_high_water = 0usize;

    while completed < n {
        events_processed += 1;
        heap_high_water = heap_high_water.max(completions.len());
        // Jobs neither completed nor currently on a worker — with reliable
        // workers this is "unexecuted and unassigned"; with failures a job
        // can re-enter this state.
        let unassigned = n - completed - in_flight;
        let next_completion = completions.peek().map(|Reverse((t, _))| t.0);
        // Completions win ties so a batch arriving at the same instant sees
        // the freed dependencies. With reliable workers, batches after the
        // last assignment cannot matter and are skipped entirely (keeping
        // the RNG stream identical to the paper's model).
        let take_completion = match next_completion {
            Some(tc) => (unassigned == 0 && failures == 0.0) || tc <= next_batch,
            None => false,
        };
        if take_completion {
            let Reverse((Time(t), job)) = completions.pop().expect("peeked");
            in_flight -= 1;
            if failures > 0.0 && rng.gen_bool(failures) {
                // The worker quit or returned garbage: the job becomes
                // eligible again (its parents are still complete).
                queue.push(job);
                if let Some(ts) = telem.as_mut() {
                    ts.eligible_at[job.index()] = t;
                }
                if let Some(tr) = trace.as_mut() {
                    tr.push(TraceEvent::JobFailed { time: t, job });
                }
            } else {
                completed += 1;
                makespan = makespan.max(t);
                if let Some(ts) = telem.as_mut() {
                    ts.telemetry.record_service(t - ts.assigned_at[job.index()]);
                }
                if let Some(tr) = trace.as_mut() {
                    tr.push(TraceEvent::JobCompleted { time: t, job });
                }
                for &child in dag.children(job) {
                    let m = &mut missing_parents[child.index()];
                    *m -= 1;
                    if *m == 0 {
                        queue.push(child);
                        if let Some(ts) = telem.as_mut() {
                            ts.eligible_at[child.index()] = t;
                        }
                    }
                }
            }
            // Rollover ablation: parked workers grab newly eligible jobs
            // the moment they appear.
            while wait_mode && idle_workers > 0 && queue.len() > 0 {
                let job = queue.pop().expect("non-empty");
                idle_workers -= 1;
                let completes_at = t + runtime.sample(&mut rng);
                completions.push(Reverse((Time(completes_at), job)));
                in_flight += 1;
                if let Some(ts) = telem.as_mut() {
                    ts.record_assignment(t, job);
                }
                if let Some(tr) = trace.as_mut() {
                    tr.push(TraceEvent::JobAssigned {
                        time: t,
                        job,
                        completes_at,
                    });
                }
            }
            if let Some(ts) = telem.as_mut() {
                ts.record_step(
                    t,
                    queue.len() + in_flight,
                    queue.len(),
                    idle_workers,
                    total_requests,
                );
            }
        } else {
            // Batch arrival. A batch is *observed* (counts toward the
            // stalling and utilization denominators) iff pending
            // unassigned work exists, which under reliable workers is
            // exactly "until the batch when the last job was assigned".
            let t = next_batch;
            let size = model.sample_batch_size(&mut rng);
            if unassigned > 0 {
                batches_observed += 1;
                total_requests += size;
                let available = queue.len();
                let stalled = available == 0;
                if stalled {
                    stalled_batches += 1;
                }
                let workers = if wait_mode { size + idle_workers } else { size };
                let to_assign = (workers as usize).min(available);
                for _ in 0..to_assign {
                    let job = queue.pop().expect("available > 0");
                    let completes_at = t + runtime.sample(&mut rng);
                    completions.push(Reverse((Time(completes_at), job)));
                    in_flight += 1;
                    if let Some(ts) = telem.as_mut() {
                        ts.record_assignment(t, job);
                    }
                    if let Some(tr) = trace.as_mut() {
                        tr.push(TraceEvent::JobAssigned {
                            time: t,
                            job,
                            completes_at,
                        });
                    }
                }
                if wait_mode {
                    idle_workers = workers - to_assign as u64;
                }
                if let Some(tr) = trace.as_mut() {
                    tr.push(TraceEvent::BatchArrived {
                        time: t,
                        size,
                        assigned: to_assign,
                        stalled,
                    });
                }
            } else if wait_mode {
                idle_workers += size;
            }
            if let Some(ts) = telem.as_mut() {
                ts.record_step(
                    t,
                    queue.len() + in_flight,
                    queue.len(),
                    idle_workers,
                    total_requests,
                );
            }
            next_batch = t + interarrival.sample(&mut rng);
        }
    }

    prio_obs::counter("sim.runs").inc();
    prio_obs::counter("sim.events_processed").add(events_processed);
    prio_obs::counter("sim.stalled_batches").add(stalled_batches);
    prio_obs::gauge("sim.completion_heap_high_water").record_max(heap_high_water as u64);

    SimOutcome {
        makespan,
        batches_observed,
        stalled_batches,
        total_requests,
        num_jobs: n,
        trace,
        telemetry: telem.map(|ts| ts.telemetry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_core::fifo::fifo_schedule;
    use prio_core::Schedule;
    use prio_graph::topo::critical_path_len;

    fn fifo() -> PolicySpec {
        PolicySpec::Fifo
    }

    fn oblivious(dag: &Dag) -> PolicySpec {
        PolicySpec::Oblivious(fifo_schedule(dag))
    }

    fn chain(n: usize) -> Dag {
        let arcs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Dag::from_arcs(n, &arcs).unwrap()
    }

    #[test]
    fn determinism_per_seed() {
        let dag = chain(20);
        let model = GridModel::paper(0.5, 4.0);
        let a = simulate(&dag, &fifo(), &model, 42);
        let b = simulate(&dag, &fifo(), &model, 42);
        assert_eq!(a, b);
        let c = simulate(&dag, &fifo(), &model, 43);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn abundant_workers_approach_critical_path() {
        // Batches arrive every ~1e-3 with huge sizes: every job starts as
        // soon as it is eligible, so the makespan is about the critical
        // path length (in ~1.0-long job units).
        let dag = chain(10);
        let model = GridModel::paper(1e-3, 1u64.wrapping_shl(16) as f64);
        let out = simulate(&dag, &fifo(), &model, 7);
        let cp = (critical_path_len(&dag) + 1) as f64;
        assert!(
            (out.makespan - cp).abs() < 0.5,
            "makespan {} vs critical path {cp}",
            out.makespan
        );
        // Utilization is tiny: almost all requests are discarded.
        assert!(out.metrics().utilization < 0.01);
    }

    #[test]
    fn scarce_workers_serialize_execution() {
        // Batches of ~1 arriving every ~10 time units: jobs run one by one,
        // makespan ≈ 10 × n.
        let dag = chain(8);
        let model = GridModel::paper(10.0, 1.0);
        let out = simulate(&dag, &fifo(), &model, 11);
        assert!(out.makespan > 8.0 * 5.0, "makespan {}", out.makespan);
        // Nearly every request is served: utilization close to 1.
        assert!(
            out.metrics().utilization > 0.6,
            "{}",
            out.metrics().utilization
        );
    }

    #[test]
    fn conservation_laws() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let out = simulate_traced(&dag, &oblivious(&dag), &model, 3);
        let trace = out.trace.as_ref().unwrap();
        let assigned = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobAssigned { .. }))
            .count();
        let completed = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        assert_eq!(assigned, 6);
        assert_eq!(completed, 6);
        // Requests ≥ jobs, so utilization ≤ 1; probabilities in range.
        let m = out.metrics();
        assert!(out.total_requests >= 6);
        assert!((0.0..=1.0).contains(&m.utilization));
        assert!((0.0..=1.0).contains(&m.stall_probability));
    }

    #[test]
    fn trace_respects_dependencies() {
        let dag = Dag::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let model = GridModel::paper(0.2, 8.0);
        let out = simulate_traced(&dag, &fifo(), &model, 9);
        let mut completed_at = [f64::NAN; 4];
        let mut assigned_at = [f64::NAN; 4];
        for e in out.trace.as_ref().unwrap() {
            match e {
                TraceEvent::JobAssigned { time, job, .. } => assigned_at[job.index()] = *time,
                TraceEvent::JobCompleted { time, job } => completed_at[job.index()] = *time,
                _ => {}
            }
        }
        for (u, v) in dag.arcs() {
            assert!(
                completed_at[u.index()] <= assigned_at[v.index()],
                "child {v:?} assigned before parent {u:?} completed"
            );
        }
    }

    #[test]
    fn stalls_happen_on_serial_chains_with_frequent_batches() {
        // A long chain with very frequent batches: most batches find the
        // single in-flight job already assigned — near-certain stalling.
        let dag = chain(10);
        let model = GridModel::paper(0.05, 1.0);
        let out = simulate(&dag, &fifo(), &model, 13);
        let m = out.metrics();
        assert!(m.stall_probability > 0.5, "stall {}", m.stall_probability);
    }

    #[test]
    fn waiting_workers_speed_up_scarce_regimes() {
        // A chain with rare tiny batches: discarded workers waste most
        // arrivals; parked workers pick each next link immediately.
        let dag = chain(10);
        let discard = GridModel::paper(3.0, 1.0);
        let wait = discard.with_waiting_workers();
        let mean = |m: &GridModel| -> f64 {
            (0..40)
                .map(|s| simulate(&dag, &PolicySpec::Fifo, m, s).makespan)
                .sum::<f64>()
                / 40.0
        };
        let t_discard = mean(&discard);
        let t_wait = mean(&wait);
        // The exact ratio depends on the RNG stream; require a clear
        // improvement rather than a stream-specific margin.
        assert!(
            t_wait < t_discard * 0.9,
            "parked workers must help: {t_wait} vs {t_discard}"
        );
    }

    #[test]
    fn waiting_workers_preserve_dependencies() {
        let dag = Dag::from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let model = GridModel::paper(0.5, 2.0).with_waiting_workers();
        let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, 8);
        let mut completed_at = [f64::NAN; 5];
        let mut assigned_at = [f64::NAN; 5];
        for e in out.trace.as_ref().unwrap() {
            match e {
                TraceEvent::JobAssigned { time, job, .. } => assigned_at[job.index()] = *time,
                TraceEvent::JobCompleted { time, job } => completed_at[job.index()] = *time,
                _ => {}
            }
        }
        for (u, v) in dag.arcs() {
            assert!(completed_at[u.index()] <= assigned_at[v.index()]);
        }
    }

    #[test]
    fn discard_mode_is_unchanged_by_the_flag_default() {
        let dag = chain(8);
        let a = GridModel::paper(0.7, 3.0);
        assert_eq!(a.unfilled, crate::model::UnfilledRequests::Discard);
        let out1 = simulate(&dag, &fifo(), &a, 3);
        let out2 = simulate(&dag, &fifo(), &a, 3);
        assert_eq!(out1, out2);
    }

    #[test]
    fn failures_retry_until_success() {
        let dag = chain(6);
        let model = GridModel::paper(0.5, 4.0).with_failures(0.4);
        let out = simulate_traced(&dag, &fifo(), &model, 21);
        let trace = out.trace.as_ref().unwrap();
        let failures = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count();
        let completions = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        let assignments = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobAssigned { .. }))
            .count();
        assert_eq!(completions, 6, "every job eventually completes");
        assert_eq!(
            assignments,
            completions + failures,
            "each failure re-assigns"
        );
        assert!(
            failures > 0,
            "with p=0.4 over many assignments some failure occurs"
        );
        // Dependencies still respected: completion order is the chain.
        let order: Vec<NodeId> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::JobCompleted { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        for w in order.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn failures_increase_makespan() {
        let dag = chain(12);
        let reliable = GridModel::paper(0.5, 4.0);
        let flaky = reliable.with_failures(0.3);
        let mean = |m: &GridModel| -> f64 {
            (0..40)
                .map(|s| simulate(&dag, &fifo(), m, s).makespan)
                .sum::<f64>()
                / 40.0
        };
        let t_reliable = mean(&reliable);
        let t_flaky = mean(&flaky);
        assert!(
            t_flaky > t_reliable * 1.15,
            "retries must cost time: {t_flaky} vs {t_reliable}"
        );
    }

    #[test]
    fn zero_failure_probability_matches_reliable_model_exactly() {
        let dag = chain(10);
        let a = GridModel::paper(0.7, 3.0);
        let b = a.with_failures(0.0);
        assert_eq!(
            simulate(&dag, &fifo(), &a, 5),
            simulate(&dag, &fifo(), &b, 5)
        );
    }

    #[test]
    fn empty_dag_is_trivial() {
        let dag = prio_graph::DagBuilder::new().build().unwrap();
        let out = simulate(&dag, &fifo(), &GridModel::paper(1.0, 1.0), 1);
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.batches_observed, 0);
        let m = out.metrics();
        assert_eq!(m.stall_probability, 0.0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn traced_runs_collect_consistent_telemetry() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let out = simulate_traced(&dag, &oblivious(&dag), &model, 3);
        let telem = out.telemetry.as_ref().expect("traced runs carry telemetry");
        // One wait sample per assignment, one service sample per
        // completion (reliable model: both equal the job count).
        assert_eq!(telem.job_wait.count(), 6);
        assert_eq!(telem.job_service.count(), 6);
        // Every processed event sampled each series.
        let d = telem.eligible_pool.digest();
        assert!(d.pushed > 0);
        assert!(d.peak >= 1.0, "some job was eligible at some point");
        assert!(d.peak <= 6.0, "pool cannot exceed the dag");
        // The run ends with everything completed: empty pool and queue.
        assert_eq!(d.last_v, 0.0);
        assert_eq!(telem.ready_queue.digest().last_v, 0.0);
        // Utilization stays a ratio in [0, 1] under reliable workers.
        let u = telem.utilization.digest();
        assert!(u.peak <= 1.0 && u.mean >= 0.0, "{u:?}");
        // Discard model never parks workers.
        assert_eq!(telem.idle_workers.digest().peak, 0.0);
        // Untraced runs carry none.
        assert!(simulate(&dag, &oblivious(&dag), &model, 3)
            .telemetry
            .is_none());
    }

    #[test]
    fn telemetry_is_deterministic_per_seed() {
        let dag = chain(15);
        let model = GridModel::paper(0.5, 4.0).with_failures(0.2);
        let a = simulate_traced(&dag, &fifo(), &model, 17);
        let b = simulate_traced(&dag, &fifo(), &model, 17);
        assert_eq!(a, b, "telemetry must be a pure function of the seed");
        // With failures, waits outnumber services by the retry count.
        let telem = a.telemetry.unwrap();
        let failures = a
            .trace
            .unwrap()
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count() as u64;
        assert_eq!(telem.job_wait.count(), 15 + failures);
        assert_eq!(telem.job_service.count(), 15);
    }

    #[test]
    fn oblivious_respects_priority_order_within_batches() {
        // Two independent jobs; schedule says job 1 first; a batch of size
        // 1 must assign job 1.
        let dag = Dag::from_arcs(2, &[]).unwrap();
        let sched = Schedule::new(&dag, vec![NodeId(1), NodeId(0)]).unwrap();
        let model = GridModel {
            mean_batch_size: 1.0,
            ..GridModel::paper(5.0, 1.0)
        };
        let out = simulate_traced(&dag, &PolicySpec::Oblivious(sched), &model, 2);
        let first_assigned = out
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .find_map(|e| match e {
                TraceEvent::JobAssigned { job, .. } => Some(*job),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_assigned, NodeId(1));
    }
}
