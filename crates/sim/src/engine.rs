//! The event-driven grid simulator (§4.1), with optional fault injection.
//!
//! Under the paper's reliable model two event kinds drive the clock:
//! *batch arrivals* (workers requesting jobs; unfilled requests are
//! discarded) and *job completions* (results returned, possibly rendering
//! children eligible). The run ends when all jobs have completed; the
//! makespan is the last completion time.
//!
//! With a [`FaultConfig`] ([`simulate_faulty`]) two more event kinds
//! appear: *releases* (a transiently failed job re-entering the eligible
//! queue after its retry backoff) and *pool churn* (the worker pool going
//! down — killing every in-flight job — and coming back up). Jobs whose
//! retries exhaust, or whose fault is permanent, abort DAGMan-style: they
//! resolve as failed-permanent and every descendant resolves as
//! unreachable. The run then ends when every job is *resolved*
//! (completed, failed-permanent, or unreachable).
//!
//! Determinism: all randomness comes from seeded streams (the main stream
//! plus dedicated fault/churn streams that the reliable path never
//! touches), and events are processed in time order with completions
//! winning ties, so a run is a pure function of
//! `(dag, policy, model, faults, seed)`. An inactive fault config takes
//! exactly the reliable code path: same events, same RNG draws,
//! bit-identical outcome.

use crate::fault::{FaultConfig, RetryPolicy};
use crate::metrics::RunMetrics;
use crate::model::{GridModel, UnfilledRequests};
use crate::policy::PolicySpec;
use crate::telemetry::SimTelemetry;
use crate::trace::{Trace, TraceConsumer, TraceEvent, STREAM_BATCH_EVENTS};
use prio_graph::{Dag, NodeId};
use prio_stats::{seeded_rng, Exponential};
use rand::Rng as _;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered f64 for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A heap event. The derived order breaks equal-time ties: completions
/// first (by job id, as the reliable engine always did), then releases,
/// then churn transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// A worker returns job results; the generation tag invalidates
    /// completions of assignments killed by pool churn.
    Completion(NodeId, u32),
    /// A transiently failed job re-enters the eligible queue.
    Release(NodeId),
    /// The worker pool goes down.
    PoolDown,
    /// The worker pool comes back up.
    PoolUp,
}

/// How one job ended, when the fault layer is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job completed successfully.
    Completed,
    /// The job aborted: a permanent fault, or retries exhausted.
    FailedPermanent,
    /// An ancestor aborted, so the job could never run.
    Unreachable,
}

/// The raw counters of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Time at which the last job resolved (0 for an empty dag). Without
    /// faults every job completes and this is the last completion time.
    pub makespan: f64,
    /// Batches that arrived up to and including the batch that assigned
    /// the last job.
    pub batches_observed: u64,
    /// Among those, batches that found pending work but no eligible
    /// unassigned job ("stalls").
    pub stalled_batches: u64,
    /// Total worker requests in the observed batches.
    pub total_requests: u64,
    /// Number of jobs in the dag.
    pub num_jobs: usize,
    /// Jobs that completed successfully (equals `num_jobs` without
    /// faults).
    pub completed: usize,
    /// Jobs that aborted permanently (fault layer only).
    pub failed_permanent: usize,
    /// Jobs unreachable because an ancestor aborted (fault layer only).
    pub unreachable: usize,
    /// Failed attempts across all jobs (legacy worker failures plus
    /// injected faults).
    pub failed_attempts: u64,
    /// Simulated time spent on attempts that failed ("wasted work");
    /// tracked whenever failures are possible.
    pub wasted_time: f64,
    /// Per-job resolution, when the fault layer was active.
    pub outcomes: Option<Vec<JobOutcome>>,
    /// Event trace, when requested.
    pub trace: Option<Trace>,
    /// Time-series and latency telemetry, when requested (traced runs).
    pub telemetry: Option<SimTelemetry>,
}

impl SimOutcome {
    /// Derives the paper's three metrics from the counters.
    pub fn metrics(&self) -> RunMetrics {
        RunMetrics {
            execution_time: self.makespan,
            stall_probability: if self.batches_observed == 0 {
                0.0
            } else {
                self.stalled_batches as f64 / self.batches_observed as f64
            },
            utilization: if self.total_requests == 0 {
                0.0
            } else {
                self.num_jobs as f64 / self.total_requests as f64
            },
        }
    }
}

/// Bookkeeping for telemetry collection during a traced run: the
/// telemetry itself plus per-job timestamps used to derive wait and
/// service latencies, and the running assignment count feeding the
/// utilization series.
struct TelemetryState {
    telemetry: SimTelemetry,
    eligible_at: Vec<f64>,
    assigned_at: Vec<f64>,
    assigned_total: u64,
}

impl TelemetryState {
    /// Records a job assignment at time `t`: its eligible → assigned wait
    /// and the timestamp its eventual service time is measured from.
    fn record_assignment(&mut self, t: f64, job: NodeId) {
        self.telemetry
            .record_wait(t - self.eligible_at[job.index()]);
        self.assigned_at[job.index()] = t;
        self.assigned_total += 1;
    }

    /// Samples all four series at time `t`. Utilization is the running
    /// assigned / requested ratio (0 until the first request arrives).
    fn record_step(&mut self, t: f64, eligible: usize, ready: usize, idle: u64, requests: u64) {
        let util = if requests == 0 {
            0.0
        } else {
            self.assigned_total as f64 / requests as f64
        };
        self.telemetry.record_step(t, eligible, ready, idle, util);
    }
}

/// Mutable fault-layer state for one run. Allocated only when the
/// [`FaultConfig`] is active, so the reliable hot path pays nothing.
struct FaultState {
    fault_seed: u64,
    churn_rng: Option<prio_stats::rng::SimRng>,
    mttf: Exponential,
    mttr: Exponential,
    retry: RetryPolicy,
    /// Attempts started per job (1-based once assigned).
    attempts: Vec<u32>,
    /// Assignment generation per job; completions of older generations
    /// (assignments killed by churn) are stale and skipped.
    generation: Vec<u32>,
    /// Whether the job is currently on a worker.
    running: Vec<bool>,
    /// Assignment timestamps for wasted-work accounting.
    assigned_at: Vec<f64>,
    /// Per-job resolution; `None` while undecided.
    outcomes: Vec<Option<JobOutcome>>,
    pool_up: bool,
}

/// Simulates one execution of `dag` under `policy` and `model` with the
/// given `seed` (the paper's reliable grid).
pub fn simulate(dag: &Dag, policy: &PolicySpec, model: &GridModel, seed: u64) -> SimOutcome {
    run::<dyn TraceConsumer>(dag, policy, model, None, seed, false, None)
}

/// Like [`simulate`] but records a full event trace and per-step
/// telemetry ([`SimTelemetry`]) — slower; for `--trace-out` and tests.
pub fn simulate_traced(dag: &Dag, policy: &PolicySpec, model: &GridModel, seed: u64) -> SimOutcome {
    run::<dyn TraceConsumer>(dag, policy, model, None, seed, true, None)
}

/// Simulates one execution with fault injection and recovery. An
/// inactive `faults` config is bit-identical to [`simulate`].
pub fn simulate_faulty(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: &FaultConfig,
    seed: u64,
) -> SimOutcome {
    run::<dyn TraceConsumer>(dag, policy, model, Some(faults), seed, false, None)
}

/// Like [`simulate_faulty`] but records the full event trace and
/// telemetry.
pub fn simulate_faulty_traced(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: &FaultConfig,
    seed: u64,
) -> SimOutcome {
    run::<dyn TraceConsumer>(dag, policy, model, Some(faults), seed, true, None)
}

/// Like [`simulate_faulty_traced`] but *streams* every trace event into
/// `consumer` at its emission site instead of buffering the trace in
/// memory (`SimOutcome::trace` stays `None`; telemetry is still
/// collected in full, so aggregates remain exact even when the consumer
/// samples or drops events). Event order and content are identical to
/// the buffered trace of the same `(dag, policy, model, faults, seed)`.
/// Pass `None` for `faults` to stream the reliable model.
pub fn simulate_streamed<S: TraceConsumer + ?Sized>(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: Option<&FaultConfig>,
    seed: u64,
    consumer: &S,
) -> SimOutcome {
    run(dag, policy, model, faults, seed, false, Some(consumer))
}

/// Marks every unresolved descendant of `job` unreachable (none of them
/// can ever have run: their aborted ancestor never completed). Returns
/// how many jobs were marked.
fn mark_descendants_unreachable(
    dag: &Dag,
    job: NodeId,
    outcomes: &mut [Option<JobOutcome>],
) -> usize {
    let mut marked = 0;
    let mut stack: Vec<NodeId> = dag.children(job).to_vec();
    while let Some(v) = stack.pop() {
        if outcomes[v.index()].is_some() {
            continue;
        }
        outcomes[v.index()] = Some(JobOutcome::Unreachable);
        marked += 1;
        stack.extend_from_slice(dag.children(v));
    }
    marked
}

/// Routes trace events to an in-memory buffer (`simulate_traced`), a
/// streaming [`TraceConsumer`] (`simulate_streamed`), or both — behind
/// one `active()` test so the untraced hot path stays a single branch
/// per emission site.
struct TraceEmitter<'a, S: TraceConsumer + ?Sized> {
    buffer: Option<Trace>,
    stream: Option<&'a S>,
    /// Pending events for `stream`, handed over in
    /// [`STREAM_BATCH_EVENTS`]-sized runs so the hot emission path is a
    /// plain `Vec` push and the consumer boundary (with its interior
    /// mutability) is crossed once per batch.
    batch: Trace,
}

impl<S: TraceConsumer + ?Sized> TraceEmitter<'_, S> {
    /// `Some(self)` iff any destination is attached, mirroring the old
    /// `Option<Trace>::as_mut()` shape at every emission site.
    fn active(&mut self) -> Option<&mut Self> {
        if self.buffer.is_some() || self.stream.is_some() {
            Some(self)
        } else {
            None
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if let Some(stream) = self.stream {
            self.batch.push(event);
            if self.batch.len() == STREAM_BATCH_EVENTS {
                stream.consume_batch(&self.batch);
                self.batch.clear();
            }
        }
        if let Some(buffer) = self.buffer.as_mut() {
            buffer.push(event);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run<S: TraceConsumer + ?Sized>(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: Option<&FaultConfig>,
    seed: u64,
    traced: bool,
    stream: Option<&S>,
) -> SimOutcome {
    let n = dag.num_nodes();
    let mut rng = seeded_rng(seed);
    let interarrival = model.interarrival();
    let runtime = model.runtime();
    let failures = model.failure_probability;

    // Fault layer: allocated only when active so the reliable hot path
    // (and its RNG stream) is exactly the pre-fault engine.
    let faults = faults.filter(|f| f.is_active());
    let mut fs: Option<FaultState> = faults.map(|f| {
        let churn_rng = f.model.worker_mttf.map(|_| {
            let mut churn = seeded_rng(crate::fault::churn_seed(seed));
            // Burn one draw so the first uptime is independent of the
            // stream head shared with other salts.
            let _: u64 = churn.gen();
            churn
        });
        FaultState {
            fault_seed: crate::fault::fault_seed(seed),
            churn_rng,
            mttf: Exponential::new(f.model.worker_mttf.unwrap_or(1.0)),
            mttr: Exponential::new(f.model.worker_mttr.max(f64::MIN_POSITIVE)),
            retry: f.retry,
            attempts: vec![0; n],
            generation: vec![0; n],
            running: vec![false; n],
            assigned_at: vec![0.0; n],
            outcomes: vec![None; n],
            pool_up: true,
        }
    });

    let mut queue = policy.make_queue(n);
    let mut missing_parents: Vec<u32> = dag.node_ids().map(|u| dag.in_degree(u) as u32).collect();
    for u in dag.sources() {
        queue.push(u);
    }

    let mut events: BinaryHeap<Reverse<(Time, Ev)>> = BinaryHeap::new();
    if let Some(fs) = fs.as_mut() {
        if let Some(churn) = fs.churn_rng.as_mut() {
            let first_down = fs.mttf.sample(churn);
            events.push(Reverse((Time(first_down), Ev::PoolDown)));
        }
    }
    let mut trace = TraceEmitter {
        buffer: traced.then(Vec::new),
        stream,
        batch: Vec::with_capacity(if stream.is_some() {
            STREAM_BATCH_EVENTS
        } else {
            0
        }),
    };
    // Lifecycle prologue (schema v3): every job is submitted at run
    // start, and the sources are immediately eligible. Emitted in
    // node-id order so traces stay deterministic per seed.
    if let Some(tr) = trace.active() {
        for u in dag.node_ids() {
            tr.push(TraceEvent::JobSubmitted { time: 0.0, job: u });
        }
        for u in dag.sources() {
            tr.push(TraceEvent::JobEligible { time: 0.0, job: u });
        }
    }
    // Serving-worker ids for trace assignment events: sequential over
    // granted requests, bumped only when a trace destination is active.
    let mut next_worker = 0u64;
    // Telemetry rides along only on traced/streamed runs so the plain
    // `simulate` hot path allocates nothing extra. Streamed runs always
    // collect it in full — sampling happens in the consumer, so
    // aggregates stay exact. `eligible_at` starts at 0.0 (sources are
    // eligible from the start) and is overwritten whenever a job
    // (re-)enters the ready queue.
    let collect_telemetry = traced || stream.is_some();
    let mut telem: Option<TelemetryState> = collect_telemetry.then(|| TelemetryState {
        telemetry: SimTelemetry::new(),
        eligible_at: vec![0.0; n],
        assigned_at: vec![0.0; n],
        assigned_total: 0,
    });

    let mut in_flight = 0usize;
    let mut completed = 0usize;
    let mut resolved = 0usize;
    let mut failed_permanent = 0usize;
    let mut unreachable = 0usize;
    let mut failed_attempts = 0u64;
    let mut wasted_time = 0.0f64;
    let mut makespan = 0.0f64;
    let mut batches_observed = 0u64;
    let mut stalled_batches = 0u64;
    let mut total_requests = 0u64;
    // Parked workers (rollover ablation only; stays 0 under Discard).
    let wait_mode = model.unfilled == UnfilledRequests::Wait;
    let mut idle_workers = 0u64;

    // The first batch arrives at time 0.
    let mut next_batch = 0.0f64;

    // Observability tallies are accumulated locally and flushed to the
    // global registries once per run, so the hot loop touches no atomics.
    let mut events_processed = 0u64;
    let mut heap_high_water = 0usize;

    while resolved < n {
        events_processed += 1;
        heap_high_water = heap_high_water.max(events.len());
        // Jobs neither resolved nor currently on a worker — with reliable
        // workers this is "unexecuted and unassigned"; with failures a job
        // can re-enter this state (and jobs in retry backoff stay in it).
        let unassigned = n - resolved - in_flight;
        let next_event = events.peek().map(|Reverse((t, _))| t.0);
        // Completions win ties so a batch arriving at the same instant sees
        // the freed dependencies. With reliable workers, batches after the
        // last assignment cannot matter and are skipped entirely (keeping
        // the RNG stream identical to the paper's model).
        let take_event = match next_event {
            Some(tc) => (unassigned == 0 && failures == 0.0 && fs.is_none()) || tc <= next_batch,
            None => false,
        };
        if take_event {
            let Reverse((Time(t), ev)) = events.pop().expect("peeked");
            match ev {
                Ev::Completion(job, generation) => {
                    // Stale completion: this assignment was killed by pool
                    // churn; its failure was already processed then.
                    if let Some(fs) = fs.as_ref() {
                        if fs.generation[job.index()] != generation {
                            continue;
                        }
                    }
                    in_flight -= 1;
                    if let Some(fs) = fs.as_mut() {
                        fs.running[job.index()] = false;
                    }
                    if failures > 0.0 && rng.gen_bool(failures) {
                        // Legacy unreliable-worker model: the job becomes
                        // eligible again immediately, with no retry cap.
                        failed_attempts += 1;
                        queue.push(job);
                        if let Some(ts) = telem.as_mut() {
                            wasted_time += t - ts.assigned_at[job.index()];
                            ts.telemetry.record_waste(t - ts.assigned_at[job.index()]);
                            ts.eligible_at[job.index()] = t;
                        } else if let Some(fs) = fs.as_ref() {
                            wasted_time += t - fs.assigned_at[job.index()];
                        }
                        if let Some(tr) = trace.active() {
                            tr.push(TraceEvent::JobFailed { time: t, job });
                            // The legacy model re-queues immediately.
                            tr.push(TraceEvent::JobEligible { time: t, job });
                        }
                    } else if fs.as_ref().is_some_and(|fs| {
                        faults
                            .expect("fault state implies config")
                            .model
                            .attempt_fails(fs.fault_seed, job, fs.attempts[job.index()])
                    }) {
                        process_fault(
                            FaultSite {
                                dag,
                                model: &faults.expect("fault state implies config").model,
                                t,
                                job,
                                from_churn: false,
                            },
                            fs.as_mut().expect("checked"),
                            &mut queue,
                            &mut events,
                            &mut trace,
                            &mut telem,
                            &mut Totals {
                                resolved: &mut resolved,
                                failed_permanent: &mut failed_permanent,
                                unreachable: &mut unreachable,
                                failed_attempts: &mut failed_attempts,
                                wasted_time: &mut wasted_time,
                                makespan: &mut makespan,
                            },
                        );
                    } else {
                        completed += 1;
                        resolved += 1;
                        makespan = makespan.max(t);
                        if let Some(fs) = fs.as_mut() {
                            fs.outcomes[job.index()] = Some(JobOutcome::Completed);
                        }
                        if let Some(ts) = telem.as_mut() {
                            ts.telemetry.record_service(t - ts.assigned_at[job.index()]);
                            if let Some(fs) = fs.as_ref() {
                                ts.telemetry.record_attempts(fs.attempts[job.index()]);
                            }
                        }
                        if let Some(tr) = trace.active() {
                            tr.push(TraceEvent::JobCompleted { time: t, job });
                        }
                        for &child in dag.children(job) {
                            let m = &mut missing_parents[child.index()];
                            *m -= 1;
                            // A child already marked unreachable (another
                            // ancestor aborted) must never become eligible.
                            let dead = fs
                                .as_ref()
                                .is_some_and(|fs| fs.outcomes[child.index()].is_some());
                            if *m == 0 && !dead {
                                queue.push(child);
                                if let Some(ts) = telem.as_mut() {
                                    ts.eligible_at[child.index()] = t;
                                }
                                if let Some(tr) = trace.active() {
                                    tr.push(TraceEvent::JobEligible {
                                        time: t,
                                        job: child,
                                    });
                                }
                            }
                        }
                    }
                }
                Ev::Release(job) => {
                    let fs = fs.as_mut().expect("releases only exist with faults");
                    queue.push(job);
                    if let Some(ts) = telem.as_mut() {
                        ts.eligible_at[job.index()] = t;
                    }
                    if let Some(tr) = trace.active() {
                        tr.push(TraceEvent::JobRetried {
                            time: t,
                            job,
                            attempt: fs.attempts[job.index()] + 1,
                            delay: fs.retry.backoff.delay(fs.attempts[job.index()]),
                        });
                    }
                }
                Ev::PoolDown => {
                    let fsm = fs.as_mut().expect("churn only exists with faults");
                    fsm.pool_up = false;
                    // Parked workers are lost with the pool.
                    idle_workers = 0;
                    // Kill every in-flight job: each suffers a transient
                    // fault at the outage instant. Their queued completion
                    // events go stale via the generation bump.
                    let victims: Vec<NodeId> =
                        dag.node_ids().filter(|u| fsm.running[u.index()]).collect();
                    if let Some(tr) = trace.active() {
                        tr.push(TraceEvent::WorkerDown {
                            time: t,
                            lost: victims.len() as u64,
                        });
                    }
                    for job in victims {
                        let fsm = fs.as_mut().expect("checked");
                        fsm.running[job.index()] = false;
                        fsm.generation[job.index()] += 1;
                        in_flight -= 1;
                        process_fault(
                            FaultSite {
                                dag,
                                model: &faults.expect("fault state implies config").model,
                                t,
                                job,
                                from_churn: true,
                            },
                            fsm,
                            &mut queue,
                            &mut events,
                            &mut trace,
                            &mut telem,
                            &mut Totals {
                                resolved: &mut resolved,
                                failed_permanent: &mut failed_permanent,
                                unreachable: &mut unreachable,
                                failed_attempts: &mut failed_attempts,
                                wasted_time: &mut wasted_time,
                                makespan: &mut makespan,
                            },
                        );
                    }
                    let fsm = fs.as_mut().expect("checked");
                    let churn = fsm.churn_rng.as_mut().expect("churn event needs rng");
                    let up_at = t + fsm.mttr.sample(churn);
                    events.push(Reverse((Time(up_at), Ev::PoolUp)));
                }
                Ev::PoolUp => {
                    let fsm = fs.as_mut().expect("churn only exists with faults");
                    fsm.pool_up = true;
                    if let Some(tr) = trace.active() {
                        tr.push(TraceEvent::WorkerUp { time: t });
                    }
                    let churn = fsm.churn_rng.as_mut().expect("churn event needs rng");
                    let down_at = t + fsm.mttf.sample(churn);
                    events.push(Reverse((Time(down_at), Ev::PoolDown)));
                }
            }
            // Rollover ablation: parked workers grab newly eligible jobs
            // the moment they appear.
            while wait_mode && idle_workers > 0 && queue.len() > 0 {
                let job = queue.pop().expect("non-empty");
                idle_workers -= 1;
                let completes_at = t + runtime.sample(&mut rng);
                let generation = fs.as_mut().map_or(0, |fs| {
                    fs.attempts[job.index()] += 1;
                    fs.running[job.index()] = true;
                    fs.assigned_at[job.index()] = t;
                    fs.generation[job.index()]
                });
                events.push(Reverse((
                    Time(completes_at),
                    Ev::Completion(job, generation),
                )));
                in_flight += 1;
                if let Some(ts) = telem.as_mut() {
                    ts.record_assignment(t, job);
                }
                if let Some(tr) = trace.active() {
                    next_worker += 1;
                    tr.push(TraceEvent::JobAssigned {
                        time: t,
                        job,
                        completes_at,
                        worker: next_worker,
                    });
                }
            }
            if let Some(ts) = telem.as_mut() {
                ts.record_step(
                    t,
                    queue.len() + in_flight,
                    queue.len(),
                    idle_workers,
                    total_requests,
                );
            }
        } else {
            // Batch arrival. A batch is *observed* (counts toward the
            // stalling and utilization denominators) iff pending
            // unassigned work exists, which under reliable workers is
            // exactly "until the batch when the last job was assigned".
            // While the pool is down, arriving workers never reach the
            // server: the batch is neither observed nor parked.
            let t = next_batch;
            let size = model.sample_batch_size(&mut rng);
            let pool_up = fs.as_ref().is_none_or(|fs| fs.pool_up);
            if unassigned > 0 && pool_up {
                batches_observed += 1;
                total_requests += size;
                let available = queue.len();
                let stalled = available == 0;
                if stalled {
                    stalled_batches += 1;
                }
                let workers = if wait_mode { size + idle_workers } else { size };
                let to_assign = (workers as usize).min(available);
                for _ in 0..to_assign {
                    let job = queue.pop().expect("available > 0");
                    let completes_at = t + runtime.sample(&mut rng);
                    let generation = fs.as_mut().map_or(0, |fs| {
                        fs.attempts[job.index()] += 1;
                        fs.running[job.index()] = true;
                        fs.assigned_at[job.index()] = t;
                        fs.generation[job.index()]
                    });
                    events.push(Reverse((
                        Time(completes_at),
                        Ev::Completion(job, generation),
                    )));
                    in_flight += 1;
                    if let Some(ts) = telem.as_mut() {
                        ts.record_assignment(t, job);
                    }
                    if let Some(tr) = trace.active() {
                        next_worker += 1;
                        tr.push(TraceEvent::JobAssigned {
                            time: t,
                            job,
                            completes_at,
                            worker: next_worker,
                        });
                    }
                }
                if wait_mode {
                    idle_workers = workers - to_assign as u64;
                }
                if let Some(tr) = trace.active() {
                    tr.push(TraceEvent::BatchArrived {
                        time: t,
                        size,
                        assigned: to_assign,
                        stalled,
                    });
                }
            } else if wait_mode && pool_up {
                idle_workers += size;
            }
            if let Some(ts) = telem.as_mut() {
                ts.record_step(
                    t,
                    queue.len() + in_flight,
                    queue.len(),
                    idle_workers,
                    total_requests,
                );
            }
            next_batch = t + interarrival.sample(&mut rng);
        }
    }

    // The run is over: hand the consumer the partial batch, then let a
    // batching consumer push its tail so callers see every event without
    // knowing the consumer's internals.
    if let Some(stream) = trace.stream {
        if !trace.batch.is_empty() {
            stream.consume_batch(&trace.batch);
            trace.batch.clear();
        }
        stream.flush();
    }

    prio_obs::counter("sim.engine.runs").inc();
    prio_obs::counter("sim.engine.events_processed").add(events_processed);
    prio_obs::counter("sim.engine.stalled_batches").add(stalled_batches);
    if failed_attempts > 0 {
        prio_obs::counter("sim.engine.failed_attempts").add(failed_attempts);
    }
    if failed_permanent + unreachable > 0 {
        prio_obs::counter("sim.engine.jobs_aborted").add((failed_permanent + unreachable) as u64);
    }
    prio_obs::gauge("sim.engine.completion_heap_high_water").record_max(heap_high_water as u64);

    SimOutcome {
        makespan,
        batches_observed,
        stalled_batches,
        total_requests,
        num_jobs: n,
        completed,
        failed_permanent,
        unreachable,
        failed_attempts,
        wasted_time,
        outcomes: fs.map(|fs| {
            fs.outcomes
                .into_iter()
                .map(|o| o.expect("every job resolves before the run ends"))
                .collect()
        }),
        trace: trace.buffer,
        telemetry: telem.map(|ts| ts.telemetry),
    }
}

/// Immutable context of one fault: where and when it struck.
struct FaultSite<'a> {
    dag: &'a Dag,
    model: &'a crate::fault::FaultModel,
    t: f64,
    job: NodeId,
    from_churn: bool,
}

/// Mutable run totals threaded into [`process_fault`].
struct Totals<'a> {
    resolved: &'a mut usize,
    failed_permanent: &'a mut usize,
    unreachable: &'a mut usize,
    failed_attempts: &'a mut u64,
    wasted_time: &'a mut f64,
    makespan: &'a mut f64,
}

/// Handles one failed attempt of `site.job` at time `site.t`: records the
/// waste, emits `JobFailed`, then either aborts the job (permanent fault
/// or retries exhausted — marking descendants unreachable) or schedules
/// its retry (immediately or after the backoff delay).
fn process_fault<S: TraceConsumer + ?Sized>(
    site: FaultSite<'_>,
    fs: &mut FaultState,
    queue: &mut crate::policy::PolicyQueue,
    events: &mut BinaryHeap<Reverse<(Time, Ev)>>,
    trace: &mut TraceEmitter<'_, S>,
    telem: &mut Option<TelemetryState>,
    totals: &mut Totals<'_>,
) {
    let FaultSite {
        dag,
        model,
        t,
        job,
        from_churn,
    } = site;
    let attempt = fs.attempts[job.index()];
    *totals.failed_attempts += 1;
    let waste = t - fs.assigned_at[job.index()];
    *totals.wasted_time += waste;
    if let Some(ts) = telem.as_mut() {
        ts.telemetry.record_waste(waste);
    }
    if let Some(tr) = trace.active() {
        tr.push(TraceEvent::JobFailed { time: t, job });
    }
    let permanent = !from_churn && model.fault_is_permanent(fs.fault_seed, job, attempt);
    let exhausted = attempt >= fs.retry.max_attempts;
    if permanent || exhausted {
        fs.outcomes[job.index()] = Some(JobOutcome::FailedPermanent);
        *totals.resolved += 1;
        *totals.failed_permanent += 1;
        *totals.makespan = totals.makespan.max(t);
        if let Some(ts) = telem.as_mut() {
            ts.telemetry.record_attempts(attempt);
        }
        let marked = mark_descendants_unreachable(dag, job, &mut fs.outcomes);
        *totals.resolved += marked;
        *totals.unreachable += marked;
    } else {
        let delay = fs.retry.backoff.delay(attempt);
        if delay > 0.0 {
            events.push(Reverse((Time(t + delay), Ev::Release(job))));
        } else {
            queue.push(job);
            if let Some(ts) = telem.as_mut() {
                ts.eligible_at[job.index()] = t;
            }
            if let Some(tr) = trace.active() {
                tr.push(TraceEvent::JobRetried {
                    time: t,
                    job,
                    attempt: attempt + 1,
                    delay: 0.0,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Backoff, FaultModel};
    use prio_core::fifo::fifo_schedule;
    use prio_core::Schedule;
    use prio_graph::topo::critical_path_len;

    fn fifo() -> PolicySpec {
        PolicySpec::Fifo
    }

    fn oblivious(dag: &Dag) -> PolicySpec {
        PolicySpec::Oblivious(fifo_schedule(dag))
    }

    fn chain(n: usize) -> Dag {
        let arcs: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Dag::from_arcs(n, &arcs).unwrap()
    }

    #[test]
    fn determinism_per_seed() {
        let dag = chain(20);
        let model = GridModel::paper(0.5, 4.0);
        let a = simulate(&dag, &fifo(), &model, 42);
        let b = simulate(&dag, &fifo(), &model, 42);
        assert_eq!(a, b);
        let c = simulate(&dag, &fifo(), &model, 43);
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn abundant_workers_approach_critical_path() {
        // Batches arrive every ~1e-3 with huge sizes: every job starts as
        // soon as it is eligible, so the makespan is about the critical
        // path length (in ~1.0-long job units).
        let dag = chain(10);
        let model = GridModel::paper(1e-3, 1u64.wrapping_shl(16) as f64);
        let out = simulate(&dag, &fifo(), &model, 7);
        let cp = (critical_path_len(&dag) + 1) as f64;
        assert!(
            (out.makespan - cp).abs() < 0.5,
            "makespan {} vs critical path {cp}",
            out.makespan
        );
        // Utilization is tiny: almost all requests are discarded.
        assert!(out.metrics().utilization < 0.01);
    }

    #[test]
    fn scarce_workers_serialize_execution() {
        // Batches of ~1 arriving every ~10 time units: jobs run one by one,
        // makespan ≈ 10 × n.
        let dag = chain(8);
        let model = GridModel::paper(10.0, 1.0);
        let out = simulate(&dag, &fifo(), &model, 11);
        assert!(out.makespan > 8.0 * 5.0, "makespan {}", out.makespan);
        // Nearly every request is served: utilization close to 1.
        assert!(
            out.metrics().utilization > 0.6,
            "{}",
            out.metrics().utilization
        );
    }

    #[test]
    fn conservation_laws() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let out = simulate_traced(&dag, &oblivious(&dag), &model, 3);
        let trace = out.trace.as_ref().unwrap();
        let assigned = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobAssigned { .. }))
            .count();
        let completed = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        assert_eq!(assigned, 6);
        assert_eq!(completed, 6);
        assert_eq!(out.completed, 6);
        assert_eq!(out.failed_permanent, 0);
        assert_eq!(out.unreachable, 0);
        // Requests ≥ jobs, so utilization ≤ 1; probabilities in range.
        let m = out.metrics();
        assert!(out.total_requests >= 6);
        assert!((0.0..=1.0).contains(&m.utilization));
        assert!((0.0..=1.0).contains(&m.stall_probability));
    }

    #[test]
    fn trace_respects_dependencies() {
        let dag = Dag::from_arcs(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let model = GridModel::paper(0.2, 8.0);
        let out = simulate_traced(&dag, &fifo(), &model, 9);
        let mut completed_at = [f64::NAN; 4];
        let mut assigned_at = [f64::NAN; 4];
        for e in out.trace.as_ref().unwrap() {
            match e {
                TraceEvent::JobAssigned { time, job, .. } => assigned_at[job.index()] = *time,
                TraceEvent::JobCompleted { time, job } => completed_at[job.index()] = *time,
                _ => {}
            }
        }
        for (u, v) in dag.arcs() {
            assert!(
                completed_at[u.index()] <= assigned_at[v.index()],
                "child {v:?} assigned before parent {u:?} completed"
            );
        }
    }

    #[test]
    fn stalls_happen_on_serial_chains_with_frequent_batches() {
        // A long chain with very frequent batches: most batches find the
        // single in-flight job already assigned — near-certain stalling.
        let dag = chain(10);
        let model = GridModel::paper(0.05, 1.0);
        let out = simulate(&dag, &fifo(), &model, 13);
        let m = out.metrics();
        assert!(m.stall_probability > 0.5, "stall {}", m.stall_probability);
    }

    #[test]
    fn waiting_workers_speed_up_scarce_regimes() {
        // A chain with rare tiny batches: discarded workers waste most
        // arrivals; parked workers pick each next link immediately.
        let dag = chain(10);
        let discard = GridModel::paper(3.0, 1.0);
        let wait = discard.with_waiting_workers();
        let mean = |m: &GridModel| -> f64 {
            (0..40)
                .map(|s| simulate(&dag, &PolicySpec::Fifo, m, s).makespan)
                .sum::<f64>()
                / 40.0
        };
        let t_discard = mean(&discard);
        let t_wait = mean(&wait);
        // The exact ratio depends on the RNG stream; require a clear
        // improvement rather than a stream-specific margin.
        assert!(
            t_wait < t_discard * 0.9,
            "parked workers must help: {t_wait} vs {t_discard}"
        );
    }

    #[test]
    fn waiting_workers_preserve_dependencies() {
        let dag = Dag::from_arcs(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let model = GridModel::paper(0.5, 2.0).with_waiting_workers();
        let out = simulate_traced(&dag, &PolicySpec::Fifo, &model, 8);
        let mut completed_at = [f64::NAN; 5];
        let mut assigned_at = [f64::NAN; 5];
        for e in out.trace.as_ref().unwrap() {
            match e {
                TraceEvent::JobAssigned { time, job, .. } => assigned_at[job.index()] = *time,
                TraceEvent::JobCompleted { time, job } => completed_at[job.index()] = *time,
                _ => {}
            }
        }
        for (u, v) in dag.arcs() {
            assert!(completed_at[u.index()] <= assigned_at[v.index()]);
        }
    }

    #[test]
    fn discard_mode_is_unchanged_by_the_flag_default() {
        let dag = chain(8);
        let a = GridModel::paper(0.7, 3.0);
        assert_eq!(a.unfilled, crate::model::UnfilledRequests::Discard);
        let out1 = simulate(&dag, &fifo(), &a, 3);
        let out2 = simulate(&dag, &fifo(), &a, 3);
        assert_eq!(out1, out2);
    }

    #[test]
    fn failures_retry_until_success() {
        let dag = chain(6);
        let model = GridModel::paper(0.5, 4.0).with_failures(0.4);
        let out = simulate_traced(&dag, &fifo(), &model, 21);
        let trace = out.trace.as_ref().unwrap();
        let failures = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count();
        let completions = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobCompleted { .. }))
            .count();
        let assignments = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobAssigned { .. }))
            .count();
        assert_eq!(completions, 6, "every job eventually completes");
        assert_eq!(
            assignments,
            completions + failures,
            "each failure re-assigns"
        );
        assert!(
            failures > 0,
            "with p=0.4 over many assignments some failure occurs"
        );
        assert_eq!(out.failed_attempts, failures as u64);
        assert!(out.wasted_time > 0.0, "traced legacy runs track waste");
        // Dependencies still respected: completion order is the chain.
        let order: Vec<NodeId> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::JobCompleted { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        for w in order.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn failures_increase_makespan() {
        let dag = chain(12);
        let reliable = GridModel::paper(0.5, 4.0);
        let flaky = reliable.with_failures(0.3);
        let mean = |m: &GridModel| -> f64 {
            (0..40)
                .map(|s| simulate(&dag, &fifo(), m, s).makespan)
                .sum::<f64>()
                / 40.0
        };
        let t_reliable = mean(&reliable);
        let t_flaky = mean(&flaky);
        assert!(
            t_flaky > t_reliable * 1.15,
            "retries must cost time: {t_flaky} vs {t_reliable}"
        );
    }

    #[test]
    fn zero_failure_probability_matches_reliable_model_exactly() {
        let dag = chain(10);
        let a = GridModel::paper(0.7, 3.0);
        let b = a.with_failures(0.0);
        assert_eq!(
            simulate(&dag, &fifo(), &a, 5),
            simulate(&dag, &fifo(), &b, 5)
        );
    }

    #[test]
    fn inactive_fault_config_is_bit_identical_to_simulate() {
        let dag = chain(10);
        let model = GridModel::paper(0.7, 3.0);
        let plain = simulate(&dag, &fifo(), &model, 5);
        let faulty = simulate_faulty(&dag, &fifo(), &model, &FaultConfig::none(), 5);
        assert_eq!(plain, faulty);
        let traced_plain = simulate_traced(&dag, &fifo(), &model, 5);
        let traced_faulty = simulate_faulty_traced(&dag, &fifo(), &model, &FaultConfig::none(), 5);
        assert_eq!(traced_plain, traced_faulty);
    }

    #[test]
    fn injected_faults_retry_and_complete() {
        let dag = chain(12);
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::with_rate(0.4),
            retry: RetryPolicy::dagman(30),
        };
        let out = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 21);
        assert_eq!(out.completed, 12);
        assert_eq!(out.failed_permanent, 0, "30 retries is plenty at p=0.4");
        let trace = out.trace.as_ref().unwrap();
        let failed = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count() as u64;
        let retried = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobRetried { .. }))
            .count() as u64;
        assert_eq!(out.failed_attempts, failed);
        assert_eq!(failed, retried, "every transient fault re-enters");
        assert!(out.wasted_time > 0.0);
        let outcomes = out.outcomes.as_ref().unwrap();
        assert!(outcomes.iter().all(|o| *o == JobOutcome::Completed));
    }

    #[test]
    fn deterministic_schedule_aborts_and_strands_descendants() {
        // Job 1 always fails; RETRY 1 (two attempts) exhausts, so jobs 2..5
        // become unreachable while the independent job 5 (no ancestor)
        // still completes.
        let dag = Dag::from_arcs(6, &[(0, 1), (1, 2), (2, 3), (2, 4)]).unwrap();
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::none().failing_first(NodeId(1), u32::MAX),
            retry: RetryPolicy::dagman(1),
        };
        let out = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 9);
        assert_eq!(out.completed, 2, "jobs 0 and 5 complete");
        assert_eq!(out.failed_permanent, 1);
        assert_eq!(out.unreachable, 3);
        assert_eq!(
            out.completed + out.failed_permanent + out.unreachable,
            out.num_jobs
        );
        let outcomes = out.outcomes.as_ref().unwrap();
        assert_eq!(outcomes[1], JobOutcome::FailedPermanent);
        for dead in [2, 3, 4] {
            assert_eq!(outcomes[dead], JobOutcome::Unreachable);
        }
        // The stranded jobs were never assigned.
        let trace = out.trace.as_ref().unwrap();
        for e in trace {
            if let TraceEvent::JobAssigned { job, .. } = e {
                assert!(job.index() < 2 || job.index() == 5, "dead job assigned");
            }
        }
        // Exactly two attempts of job 1: both failed, one retry between.
        let fails = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { job, .. } if job.index() == 1))
            .count();
        assert_eq!(fails, 2);
    }

    #[test]
    fn backoff_delays_reentry() {
        let dag = chain(2);
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::none().failing_first(NodeId(0), 1),
            retry: RetryPolicy {
                max_attempts: 3,
                backoff: Backoff::Fixed(5.0),
            },
        };
        let out = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 3);
        let trace = out.trace.as_ref().unwrap();
        let fail_t = trace
            .iter()
            .find_map(|e| match e {
                TraceEvent::JobFailed { time, .. } => Some(*time),
                _ => None,
            })
            .expect("scheduled fault fires");
        let retry = trace
            .iter()
            .find_map(|e| match e {
                TraceEvent::JobRetried {
                    time,
                    attempt,
                    delay,
                    ..
                } => Some((*time, *attempt, *delay)),
                _ => None,
            })
            .expect("job retries");
        assert!(
            (retry.0 - (fail_t + 5.0)).abs() < 1e-9,
            "re-entry at fail + backoff: {} vs {}",
            retry.0,
            fail_t + 5.0
        );
        assert_eq!(retry.1, 2, "second attempt");
        assert_eq!(retry.2, 5.0);
        assert_eq!(out.completed, 2);
    }

    #[test]
    fn pool_churn_emits_updown_pairs_and_recovers() {
        let dag = chain(12);
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::none().with_churn(8.0, 2.0),
            retry: RetryPolicy::dagman(50),
        };
        let out = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 17);
        assert_eq!(out.completed, 12, "churn with generous retries recovers");
        let trace = out.trace.as_ref().unwrap();
        let downs: Vec<f64> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::WorkerDown { time, .. } => Some(*time),
                _ => None,
            })
            .collect();
        let ups: Vec<f64> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::WorkerUp { time } => Some(*time),
                _ => None,
            })
            .collect();
        // Downs and ups alternate starting with a down; the final down may
        // be unmatched if the run ends during an outage.
        assert!(ups.len() <= downs.len());
        assert!(downs.len() >= ups.len());
        for (d, u) in downs.iter().zip(&ups) {
            assert!(d < u, "down {d} precedes its up {u}");
        }
        // Assignments never happen while the pool is down.
        let mut up = true;
        let mut down_since = 0.0;
        for e in trace {
            match e {
                TraceEvent::WorkerDown { time, .. } => {
                    up = false;
                    down_since = *time;
                }
                TraceEvent::WorkerUp { .. } => up = true,
                TraceEvent::JobAssigned { time, .. } => {
                    assert!(up, "assignment at {time} during outage since {down_since}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn empty_dag_is_trivial() {
        let dag = prio_graph::DagBuilder::new().build().unwrap();
        let out = simulate(&dag, &fifo(), &GridModel::paper(1.0, 1.0), 1);
        assert_eq!(out.makespan, 0.0);
        assert_eq!(out.batches_observed, 0);
        let m = out.metrics();
        assert_eq!(m.stall_probability, 0.0);
        assert_eq!(m.utilization, 0.0);
    }

    #[test]
    fn traced_runs_collect_consistent_telemetry() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let out = simulate_traced(&dag, &oblivious(&dag), &model, 3);
        let telem = out.telemetry.as_ref().expect("traced runs carry telemetry");
        // One wait sample per assignment, one service sample per
        // completion (reliable model: both equal the job count).
        assert_eq!(telem.job_wait.count(), 6);
        assert_eq!(telem.job_service.count(), 6);
        // Every processed event sampled each series.
        let d = telem.eligible_pool.digest();
        assert!(d.pushed > 0);
        assert!(d.peak >= 1.0, "some job was eligible at some point");
        assert!(d.peak <= 6.0, "pool cannot exceed the dag");
        // The run ends with everything completed: empty pool and queue.
        assert_eq!(d.last_v, 0.0);
        assert_eq!(telem.ready_queue.digest().last_v, 0.0);
        // Utilization stays a ratio in [0, 1] under reliable workers.
        let u = telem.utilization.digest();
        assert!(u.peak <= 1.0 && u.mean >= 0.0, "{u:?}");
        // Discard model never parks workers.
        assert_eq!(telem.idle_workers.digest().peak, 0.0);
        // Reliable runs record no fault telemetry.
        assert_eq!(telem.job_attempts.count(), 0);
        assert_eq!(telem.wasted_work.count(), 0);
        // Untraced runs carry none.
        assert!(simulate(&dag, &oblivious(&dag), &model, 3)
            .telemetry
            .is_none());
    }

    #[test]
    fn telemetry_is_deterministic_per_seed() {
        let dag = chain(15);
        let model = GridModel::paper(0.5, 4.0).with_failures(0.2);
        let a = simulate_traced(&dag, &fifo(), &model, 17);
        let b = simulate_traced(&dag, &fifo(), &model, 17);
        assert_eq!(a, b, "telemetry must be a pure function of the seed");
        // With failures, waits outnumber services by the retry count.
        let telem = a.telemetry.unwrap();
        let failures = a
            .trace
            .unwrap()
            .iter()
            .filter(|e| matches!(e, TraceEvent::JobFailed { .. }))
            .count() as u64;
        assert_eq!(telem.job_wait.count(), 15 + failures);
        assert_eq!(telem.job_service.count(), 15);
        assert_eq!(telem.wasted_work.count(), failures);
    }

    #[test]
    fn faulty_telemetry_records_attempts_and_waste() {
        let dag = chain(8);
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::with_rate(0.35),
            retry: RetryPolicy::dagman(20),
        };
        let out = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 11);
        let telem = out.telemetry.as_ref().unwrap();
        assert_eq!(
            telem.job_attempts.count(),
            8,
            "one attempts sample per resolved job"
        );
        assert_eq!(telem.wasted_work.count(), out.failed_attempts);
        assert!(telem.job_attempts.summary().max >= 1);
    }

    /// A consumer buffering into a mutex so tests can compare streamed
    /// and buffered traces event for event.
    struct Collect(std::sync::Mutex<Trace>);

    impl TraceConsumer for Collect {
        fn consume(&self, event: &TraceEvent) {
            self.0.lock().unwrap().push(*event);
        }
    }

    #[test]
    fn streamed_trace_equals_buffered_trace_event_for_event() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let model = GridModel::paper(0.3, 2.0);
        let buffered = simulate_traced(&dag, &oblivious(&dag), &model, 3);
        let collector = Collect(std::sync::Mutex::new(Vec::new()));
        let streamed = simulate_streamed(&dag, &oblivious(&dag), &model, None, 3, &collector);
        assert_eq!(
            collector.0.into_inner().unwrap(),
            *buffered.trace.as_ref().unwrap(),
            "streaming must not change event order or content"
        );
        // Streamed runs keep nothing in memory but still collect the
        // full telemetry; everything else matches the buffered run.
        assert!(streamed.trace.is_none());
        assert_eq!(streamed.telemetry, buffered.telemetry);
        assert_eq!(streamed.makespan, buffered.makespan);
        assert_eq!(streamed.metrics(), buffered.metrics());
    }

    #[test]
    fn streamed_faulty_trace_equals_buffered() {
        let dag = chain(12);
        let model = GridModel::paper(0.5, 4.0);
        let faults = FaultConfig {
            model: FaultModel::with_rate(0.4),
            retry: RetryPolicy::dagman(30),
        };
        let buffered = simulate_faulty_traced(&dag, &fifo(), &model, &faults, 21);
        let collector = Collect(std::sync::Mutex::new(Vec::new()));
        let streamed = simulate_streamed(&dag, &fifo(), &model, Some(&faults), 21, &collector);
        assert_eq!(
            collector.0.into_inner().unwrap(),
            *buffered.trace.as_ref().unwrap()
        );
        assert_eq!(streamed.outcomes, buffered.outcomes);
        assert_eq!(streamed.failed_attempts, buffered.failed_attempts);
    }

    #[test]
    fn oblivious_respects_priority_order_within_batches() {
        // Two independent jobs; schedule says job 1 first; a batch of size
        // 1 must assign job 1.
        let dag = Dag::from_arcs(2, &[]).unwrap();
        let sched = Schedule::new(&dag, vec![NodeId(1), NodeId(0)]).unwrap();
        let model = GridModel {
            mean_batch_size: 1.0,
            ..GridModel::paper(5.0, 1.0)
        };
        let out = simulate_traced(&dag, &PolicySpec::Oblivious(sched), &model, 2);
        let first_assigned = out
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .find_map(|e| match e {
                TraceEvent::JobAssigned { job, .. } => Some(*job),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_assigned, NodeId(1));
    }
}
