//! Policy comparison: ratio confidence intervals (§4.2).
//!
//! For each metric the ratio `policy A / policy B` is estimated from the
//! two empirical sampling distributions by forming all `p²` pairwise
//! ratios, trimming 2.5% from each tail for a 95% confidence interval, and
//! reporting the median (the bold dots of Figs. 6–9). With A = PRIO and
//! B = FIFO, a ratio below 1 for execution time or stalling — or above 1
//! for utilization — means PRIO wins.

use crate::fault::FaultConfig;
use crate::model::GridModel;
use crate::policy::PolicySpec;
use crate::replicate::{sampling_distributions_with, MetricDistributions, ReplicationPlan};
use prio_core::{PrioError, Prioritizer};
use prio_graph::Dag;
use prio_stats::ConfidenceInterval;

/// The outcome of comparing two policies on one model cell.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// Sampling distributions under policy A.
    pub a: MetricDistributions,
    /// Sampling distributions under policy B.
    pub b: MetricDistributions,
    /// 95% CI of the execution-time ratio A/B (`None` if some B sample is
    /// zero, per the paper).
    pub execution_time_ratio: Option<ConfidenceInterval>,
    /// 95% CI of the stalling-probability ratio A/B.
    pub stalling_ratio: Option<ConfidenceInterval>,
    /// 95% CI of the utilization ratio A/B.
    pub utilization_ratio: Option<ConfidenceInterval>,
    /// 95% CI of the wasted-work ratio A/B (`None` on failure-free
    /// runs, where every B sample is zero).
    pub wasted_work_ratio: Option<ConfidenceInterval>,
}

/// Runs both policies on the same model cell and computes the ratio
/// confidence intervals. The two policies use *independent* randomness
/// (distinct derived seed streams), matching the paper's independent
/// sampling distributions.
pub fn compare_policies(
    dag: &Dag,
    a: &PolicySpec,
    b: &PolicySpec,
    model: &GridModel,
    plan: &ReplicationPlan,
) -> ComparisonResult {
    compare_policies_with(dag, a, b, model, None, plan)
}

/// Like [`compare_policies`], but both policies run under the given
/// fault configuration — the §4-under-faults experiment. `None` (or an
/// inactive config) reproduces the reliable comparison exactly.
pub fn compare_policies_with(
    dag: &Dag,
    a: &PolicySpec,
    b: &PolicySpec,
    model: &GridModel,
    faults: Option<&FaultConfig>,
    plan: &ReplicationPlan,
) -> ComparisonResult {
    let plan_a = ReplicationPlan {
        seed: plan.seed ^ 0xA11CE,
        ..*plan
    };
    let plan_b = ReplicationPlan {
        seed: plan.seed ^ 0xB0B,
        ..*plan
    };
    let da = sampling_distributions_with(dag, a, model, faults, &plan_a);
    let db = sampling_distributions_with(dag, b, model, faults, &plan_b);
    let execution_time_ratio = da.execution_time.ratio_ci(&db.execution_time);
    let stalling_ratio = da.stalling.ratio_ci(&db.stalling);
    let utilization_ratio = da.utilization.ratio_ci(&db.utilization);
    let wasted_work_ratio = da.wasted_work.ratio_ci(&db.wasted_work);
    ComparisonResult {
        a: da,
        b: db,
        execution_time_ratio,
        stalling_ratio,
        utilization_ratio,
        wasted_work_ratio,
    }
}

/// Batch variant of the paper's PRIO-vs-FIFO experiment: prioritizes all
/// `dags` through one shared pipeline context
/// ([`Prioritizer::prioritize_many`]) and compares PRIO against FIFO on
/// the same model cell for each. A pipeline failure on one dag yields an
/// `Err` in its slot without affecting the others.
pub fn compare_prio_fifo_many(
    dags: &[Dag],
    model: &GridModel,
    plan: &ReplicationPlan,
) -> Vec<Result<ComparisonResult, PrioError>> {
    compare_prio_fifo_many_with(dags, model, None, plan)
}

/// Fault-aware batch variant: every PRIO-vs-FIFO comparison runs under
/// the given fault configuration.
pub fn compare_prio_fifo_many_with(
    dags: &[Dag],
    model: &GridModel,
    faults: Option<&FaultConfig>,
    plan: &ReplicationPlan,
) -> Vec<Result<ComparisonResult, PrioError>> {
    Prioritizer::new()
        .prioritize_many(dags)
        .into_iter()
        .zip(dags)
        .map(|(res, dag)| {
            res.map(|r| {
                let prio = PolicySpec::Oblivious(r.schedule);
                compare_policies_with(dag, &prio, &PolicySpec::Fifo, model, faults, plan)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_core::fifo::fifo_schedule;
    use prio_core::prio::prioritize;

    #[test]
    fn identical_policies_give_ratios_near_one() {
        let dag = Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap();
        let plan = ReplicationPlan {
            p: 12,
            q: 8,
            seed: 3,
            threads: 0,
        };
        let model = GridModel::paper(1.0, 2.0);
        let r = compare_policies(&dag, &PolicySpec::Fifo, &PolicySpec::Fifo, &model, &plan);
        let ci = r.execution_time_ratio.unwrap();
        assert!(ci.contains(1.0), "{ci}");
        assert!((ci.median - 1.0).abs() < 0.2, "{ci}");
    }

    #[test]
    fn prio_beats_fifo_on_a_fringed_umbrella() {
        // A miniature AIRSN: the structure where PRIO demonstrably wins.
        let dag = prio_workloads::airsn::airsn(12);
        let prio = prioritize(&dag).unwrap().schedule;
        let plan = ReplicationPlan {
            p: 16,
            q: 12,
            seed: 17,
            threads: 0,
        };
        // Medium batches, batches arriving at job-runtime pace: the
        // regime the paper identifies as PRIO-favourable.
        let model = GridModel::paper(1.0, 8.0);
        let r = compare_policies(
            &dag,
            &PolicySpec::Oblivious(prio),
            &PolicySpec::Fifo,
            &model,
            &plan,
        );
        let time = r.execution_time_ratio.unwrap();
        assert!(
            time.median < 1.0,
            "PRIO should be faster in the sweet spot: {time}"
        );
        let util = r.utilization_ratio.unwrap();
        assert!(util.median > 0.99, "PRIO should not waste workers: {util}");
    }

    #[test]
    fn batch_comparison_matches_individual_runs() {
        let dags = vec![
            prio_workloads::classic::fork_join(5),
            prio_workloads::airsn::airsn(6),
        ];
        let plan = ReplicationPlan {
            p: 6,
            q: 4,
            seed: 11,
            threads: 0,
        };
        let model = GridModel::paper(1.0, 4.0);
        let batch = compare_prio_fifo_many(&dags, &model, &plan);
        assert_eq!(batch.len(), dags.len());
        for (dag, res) in dags.iter().zip(batch) {
            let res = res.unwrap();
            let prio = PolicySpec::Oblivious(prioritize(dag).unwrap().schedule);
            let single = compare_policies(dag, &prio, &PolicySpec::Fifo, &model, &plan);
            assert_eq!(
                res.a.execution_time.samples(),
                single.a.execution_time.samples(),
                "batch and single runs must see identical PRIO schedules"
            );
        }
    }

    #[test]
    fn fifo_vs_its_oblivious_freeze_is_close() {
        // FIFO frozen into an oblivious order behaves similarly to dynamic
        // FIFO under abundant workers (both become breadth-first).
        let dag = prio_workloads::classic::fork_join(6);
        let frozen = PolicySpec::Oblivious(fifo_schedule(&dag));
        let plan = ReplicationPlan {
            p: 10,
            q: 6,
            seed: 5,
            threads: 0,
        };
        let model = GridModel::paper(0.01, 64.0);
        let r = compare_policies(&dag, &frozen, &PolicySpec::Fifo, &model, &plan);
        let ci = r.execution_time_ratio.unwrap();
        assert!(ci.contains(1.0) || (ci.median - 1.0).abs() < 0.05, "{ci}");
    }
}
