//! Fault injection and recovery: unreliable workers, retries, churn.
//!
//! The paper's §4 model is reliable; the real pools it evaluated on
//! (Jazz/Teraport) are not. This module layers three fault mechanisms on
//! the simulator without perturbing the reliable model's randomness:
//!
//! * **Per-attempt failures** ([`FaultModel::failure_probability`]): each
//!   assignment of a job independently fails with fixed probability. The
//!   decision for attempt `k` of job `j` is a *hashed* (counter-based)
//!   draw from a dedicated fault stream, so the set of failing attempts
//!   is monotone in the failure rate under a fixed seed — raising the
//!   rate only ever adds faults, never moves them.
//! * **Deterministic schedules** ([`FaultModel::fail_first_attempts`]):
//!   "job `j` fails its first `k` attempts", the reproducible unit-test
//!   fault, checked before any probabilistic draw.
//! * **Worker churn** ([`FaultModel::worker_mttf`] /
//!   [`FaultModel::worker_mttr`]): the pool alternates between up and
//!   down states with exponentially distributed uptime (mean MTTF) and
//!   repair time (mean MTTR), sampled from a second dedicated stream.
//!   Going down kills every in-flight job (a transient fault each) and
//!   discards batches until the pool comes back up.
//!
//! A fault is **transient** (the job retries under the [`RetryPolicy`])
//! or **permanent** (the job aborts immediately) — permanence is another
//! hashed per-attempt draw. Retries are capped at
//! [`RetryPolicy::max_attempts`]; exhaustion aborts the job
//! DAGMan-style: the job becomes *failed-permanent* and every
//! not-yet-completed descendant becomes *unreachable* (DAGMan would
//! never submit them). An optional fixed or exponential backoff delays
//! each re-entry into the eligible queue.
//!
//! Everything here is deterministic per `(dag, policy, model, faults,
//! retry, seed)`; an inactive [`FaultModel`] ([`FaultModel::none`])
//! leaves the engine's event stream and RNG consumption bit-identical
//! to the reliable simulator.

use prio_graph::NodeId;

/// Stream salts separating the fault and churn draws from the main
/// simulation stream (which they must never perturb).
const FAULT_STREAM_SALT: u64 = 0xFA17_FA17_FA17_FA17;
const CHURN_STREAM_SALT: u64 = 0xC42D_0B42_C42D_0B42;

/// How long a transiently failed job waits before re-entering the
/// eligible queue, as a function of how many attempts have failed so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backoff {
    /// Re-enter immediately (DAGMan's behavior).
    None,
    /// A fixed delay in simulated time units.
    Fixed(f64),
    /// `base × factor^(failures-1)`, capped at `cap` — exponential
    /// backoff in simulated time units.
    Exponential {
        /// Delay after the first failure.
        base: f64,
        /// Multiplier per additional failure (≥ 1).
        factor: f64,
        /// Upper bound on the delay.
        cap: f64,
    },
}

impl Backoff {
    /// The delay before re-entry after the `failures`-th failure
    /// (1-based). Always finite and non-negative.
    pub fn delay(&self, failures: u32) -> f64 {
        match *self {
            Backoff::None => 0.0,
            Backoff::Fixed(d) => d.max(0.0),
            Backoff::Exponential { base, factor, cap } => {
                let exp = failures.saturating_sub(1).min(64);
                (base * factor.powi(exp as i32)).min(cap).max(0.0)
            }
        }
    }

    /// Parses a CLI spec: `none`, a bare number (fixed), `fixed:D`, or
    /// `exp:BASE[:FACTOR[:CAP]]` (factor defaults to 2, cap to 64×base).
    pub fn parse(spec: &str) -> Result<Backoff, String> {
        let bad = |what: &str| format!("invalid backoff {spec:?}: {what}");
        let num = |s: &str| s.parse::<f64>().map_err(|_| bad("not a number"));
        if spec.eq_ignore_ascii_case("none") {
            return Ok(Backoff::None);
        }
        if let Some(rest) = spec.strip_prefix("fixed:") {
            return Ok(Backoff::Fixed(num(rest)?));
        }
        if let Some(rest) = spec.strip_prefix("exp:") {
            let parts: Vec<&str> = rest.split(':').collect();
            let (base, factor, cap) = match parts.as_slice() {
                [b] => (num(b)?, 2.0, num(b)? * 64.0),
                [b, f] => (num(b)?, num(f)?, num(b)? * 64.0),
                [b, f, c] => (num(b)?, num(f)?, num(c)?),
                _ => return Err(bad("expected exp:BASE[:FACTOR[:CAP]]")),
            };
            if base < 0.0 || factor < 1.0 || cap < base {
                return Err(bad("need base >= 0, factor >= 1, cap >= base"));
            }
            return Ok(Backoff::Exponential { base, factor, cap });
        }
        Ok(Backoff::Fixed(num(spec)?))
    }
}

/// Retry discipline for transiently failed jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed per job (first run + retries), ≥ 1. A job
    /// whose `max_attempts`-th attempt fails aborts permanently.
    pub max_attempts: u32,
    /// Delay before each re-entry into the eligible queue.
    pub backoff: Backoff,
}

impl Default for RetryPolicy {
    /// DAGMan's common configuration: `RETRY 3` (four attempts), no
    /// backoff.
    fn default() -> Self {
        RetryPolicy::dagman(3)
    }
}

impl RetryPolicy {
    /// DAGMan semantics: `RETRY n` allows `n` retries after the first
    /// attempt, re-entering immediately.
    pub fn dagman(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff: Backoff::None,
        }
    }

    /// Unlimited immediate retries (the legacy robustness-extension
    /// behavior, as a policy).
    pub fn unlimited() -> RetryPolicy {
        RetryPolicy {
            max_attempts: u32::MAX,
            backoff: Backoff::None,
        }
    }
}

/// The seeded fault model. Inactive by default ([`FaultModel::none`]):
/// an inactive model is never consulted and the engine's behavior is
/// bit-identical to the reliable simulator.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultModel {
    /// Probability that any given attempt fails (hashed per
    /// `(job, attempt)`, so failure sets are monotone in this rate).
    pub failure_probability: f64,
    /// Probability that a probabilistic fault is permanent (the job
    /// aborts at once instead of retrying). Deterministic and churn
    /// faults are always transient.
    pub permanent_probability: f64,
    /// Deterministic schedule: job `j` fails its first `k` attempts.
    pub fail_first_attempts: Vec<(NodeId, u32)>,
    /// Mean time to pool failure (worker churn); `None` disables churn.
    pub worker_mttf: Option<f64>,
    /// Mean time to pool repair once down.
    pub worker_mttr: f64,
}

impl FaultModel {
    /// The fault-free model.
    pub fn none() -> FaultModel {
        FaultModel::default()
    }

    /// A purely probabilistic model failing each attempt with rate `p`.
    pub fn with_rate(p: f64) -> FaultModel {
        assert!((0.0..1.0).contains(&p), "failure rate must be in [0, 1)");
        FaultModel {
            failure_probability: p,
            ..FaultModel::default()
        }
    }

    /// Adds a deterministic "first `k` attempts of `job` fail" entry.
    pub fn failing_first(mut self, job: NodeId, attempts: u32) -> FaultModel {
        self.fail_first_attempts.push((job, attempts));
        self
    }

    /// Enables pool churn with the given mean time to failure / repair.
    pub fn with_churn(mut self, mttf: f64, mttr: f64) -> FaultModel {
        assert!(mttf > 0.0 && mttr > 0.0, "MTTF and MTTR must be positive");
        self.worker_mttf = Some(mttf);
        self.worker_mttr = mttr;
        self
    }

    /// Makes a fraction of probabilistic faults permanent.
    pub fn with_permanent(mut self, p: f64) -> FaultModel {
        assert!((0.0..=1.0).contains(&p), "permanent fraction in [0, 1]");
        self.permanent_probability = p;
        self
    }

    /// Whether the engine needs the fault bookkeeping at all.
    pub fn is_active(&self) -> bool {
        self.failure_probability > 0.0
            || !self.fail_first_attempts.is_empty()
            || self.worker_mttf.is_some()
    }

    /// Whether attempt `attempt` (1-based) of `job` fails under seed
    /// `fault_seed`. Deterministic schedule first, then the hashed
    /// per-attempt draw.
    pub fn attempt_fails(&self, fault_seed: u64, job: NodeId, attempt: u32) -> bool {
        if self
            .fail_first_attempts
            .iter()
            .any(|&(j, k)| j == job && attempt <= k)
        {
            return true;
        }
        self.failure_probability > 0.0
            && hashed_u01(fault_seed, job, attempt, 0) < self.failure_probability
    }

    /// Whether a *probabilistic* fault on this attempt is permanent
    /// (deterministic and churn faults are always transient).
    pub fn fault_is_permanent(&self, fault_seed: u64, job: NodeId, attempt: u32) -> bool {
        if self
            .fail_first_attempts
            .iter()
            .any(|&(j, k)| j == job && attempt <= k)
        {
            return false;
        }
        self.permanent_probability > 0.0
            && hashed_u01(fault_seed, job, attempt, 1) < self.permanent_probability
    }
}

/// A fault model and a retry policy, bundled for threading through the
/// replication/experiment/sweep layers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// What goes wrong.
    pub model: FaultModel,
    /// What the scheduler does about it.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// The fault-free configuration.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// Probabilistic faults at rate `p` under the default (DAGMan
    /// `RETRY 3`) retry policy.
    pub fn with_rate(p: f64) -> FaultConfig {
        FaultConfig {
            model: FaultModel::with_rate(p),
            retry: RetryPolicy::default(),
        }
    }

    /// Whether the engine needs the fault bookkeeping at all.
    pub fn is_active(&self) -> bool {
        self.model.is_active()
    }
}

/// The fault-stream seed derived from a run seed.
pub(crate) fn fault_seed(run_seed: u64) -> u64 {
    prio_stats::rng::derive_seed(run_seed, FAULT_STREAM_SALT)
}

/// The churn-stream seed derived from a run seed.
pub(crate) fn churn_seed(run_seed: u64) -> u64 {
    prio_stats::rng::derive_seed(run_seed, CHURN_STREAM_SALT)
}

/// A uniform `[0, 1)` draw determined by `(seed, job, attempt, salt)` —
/// counter-based, so distinct attempts have independent draws and the
/// same attempt always draws the same value (SplitMix64 finalizer).
fn hashed_u01(seed: u64, job: NodeId, attempt: u32, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(job.0).wrapping_add(1)))
        .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(u64::from(attempt)))
        .wrapping_add(salt.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!FaultModel::none().is_active());
        assert!(!FaultConfig::none().is_active());
        assert!(FaultModel::with_rate(0.1).is_active());
        assert!(FaultModel::none().with_churn(10.0, 1.0).is_active());
        assert!(FaultModel::none().failing_first(NodeId(0), 1).is_active());
    }

    #[test]
    fn failure_sets_are_monotone_in_rate() {
        // The hashed draw makes "attempt fails at rate p" monotone in p:
        // every attempt failing at 0.1 also fails at 0.3.
        let lo = FaultModel::with_rate(0.1);
        let hi = FaultModel::with_rate(0.3);
        let mut lo_fails = 0;
        for job in 0..200u32 {
            for attempt in 1..=4u32 {
                if lo.attempt_fails(7, NodeId(job), attempt) {
                    lo_fails += 1;
                    assert!(hi.attempt_fails(7, NodeId(job), attempt));
                }
            }
        }
        assert!(lo_fails > 0, "rate 0.1 over 800 attempts must fail some");
    }

    #[test]
    fn hashed_rate_tracks_probability() {
        let m = FaultModel::with_rate(0.25);
        let n = 10_000u32;
        let fails = (0..n).filter(|&j| m.attempt_fails(3, NodeId(j), 1)).count() as f64;
        let rate = fails / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn deterministic_schedule_beats_probability() {
        let m = FaultModel::none().failing_first(NodeId(3), 2);
        assert!(m.attempt_fails(0, NodeId(3), 1));
        assert!(m.attempt_fails(0, NodeId(3), 2));
        assert!(!m.attempt_fails(0, NodeId(3), 3));
        assert!(!m.attempt_fails(0, NodeId(4), 1));
        // Scheduled faults are always transient.
        assert!(!m
            .clone()
            .with_permanent(1.0)
            .fault_is_permanent(0, NodeId(3), 1));
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        assert_eq!(Backoff::None.delay(1), 0.0);
        assert_eq!(Backoff::Fixed(2.5).delay(3), 2.5);
        let exp = Backoff::Exponential {
            base: 1.0,
            factor: 2.0,
            cap: 5.0,
        };
        assert_eq!(exp.delay(1), 1.0);
        assert_eq!(exp.delay(2), 2.0);
        assert_eq!(exp.delay(3), 4.0);
        assert_eq!(exp.delay(4), 5.0, "capped");
        assert_eq!(exp.delay(64), 5.0, "huge failure counts stay capped");
    }

    #[test]
    fn backoff_parses_cli_specs() {
        assert_eq!(Backoff::parse("none").unwrap(), Backoff::None);
        assert_eq!(Backoff::parse("0.5").unwrap(), Backoff::Fixed(0.5));
        assert_eq!(Backoff::parse("fixed:2").unwrap(), Backoff::Fixed(2.0));
        assert_eq!(
            Backoff::parse("exp:1:2:8").unwrap(),
            Backoff::Exponential {
                base: 1.0,
                factor: 2.0,
                cap: 8.0,
            }
        );
        assert_eq!(
            Backoff::parse("exp:0.5").unwrap(),
            Backoff::Exponential {
                base: 0.5,
                factor: 2.0,
                cap: 32.0,
            }
        );
        assert!(Backoff::parse("exp:1:0.5").is_err(), "factor < 1");
        assert!(Backoff::parse("garbage").is_err());
    }

    #[test]
    fn retry_policy_dagman_semantics() {
        assert_eq!(RetryPolicy::dagman(3).max_attempts, 4);
        assert_eq!(RetryPolicy::dagman(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default(), RetryPolicy::dagman(3));
        assert_eq!(RetryPolicy::unlimited().max_attempts, u32::MAX);
    }

    #[test]
    fn streams_are_separated() {
        assert_ne!(fault_seed(1), churn_seed(1));
        assert_ne!(fault_seed(1), fault_seed(2));
    }
}
