//! Replication: building empirical sampling distributions from many
//! simulation runs (§4.2).
//!
//! A *sample* is the average of `q` independent simulated measurements;
//! `p` samples form the empirical sampling distribution of each metric.
//! Replications are embarrassingly parallel: a crossbeam work queue feeds
//! run indices to worker threads, and every run's seed is derived
//! deterministically from the plan's master seed and the run index, so the
//! result is bit-identical regardless of thread count.

use crate::engine::{simulate, simulate_faulty};
use crate::fault::FaultConfig;
use crate::model::GridModel;
use crate::policy::PolicySpec;
use prio_graph::Dag;
use prio_stats::rng::derive_seed;
use prio_stats::SamplingDistribution;

/// How many runs to perform and how to seed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationPlan {
    /// Number of samples (paper: ~300).
    pub p: usize,
    /// Measurements averaged per sample (paper: 300).
    pub q: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
}

impl ReplicationPlan {
    /// A small default plan suitable for tests and quick sweeps.
    pub fn quick(seed: u64) -> Self {
        ReplicationPlan {
            p: 20,
            q: 5,
            seed,
            threads: 0,
        }
    }

    /// The paper's plan (p = 300 samples of q = 300 measurements).
    pub fn paper(seed: u64) -> Self {
        ReplicationPlan {
            p: 300,
            q: 300,
            seed,
            threads: 0,
        }
    }

    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// The per-metric empirical sampling distributions of one policy.
#[derive(Debug, Clone)]
pub struct MetricDistributions {
    /// Sampling distribution of the mean execution time.
    pub execution_time: SamplingDistribution,
    /// Sampling distribution of the mean probability of stalling.
    pub stalling: SamplingDistribution,
    /// Sampling distribution of the mean utilization.
    pub utilization: SamplingDistribution,
    /// Sampling distribution of the mean failed-attempt count per run
    /// (all-zero without faults).
    pub failed_attempts: SamplingDistribution,
    /// Sampling distribution of the mean wasted work per run — simulated
    /// time spent on attempts that later failed (all-zero without
    /// faults).
    pub wasted_work: SamplingDistribution,
}

/// Runs `p × q` simulations of `dag` under `policy`/`model` and aggregates
/// them into per-metric sampling distributions.
pub fn sampling_distributions(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    plan: &ReplicationPlan,
) -> MetricDistributions {
    sampling_distributions_with(dag, policy, model, None, plan)
}

/// Like [`sampling_distributions`], but each run executes under the
/// given fault configuration. `None` (or an inactive config) is the
/// reliable grid, with identical seeds and measurements.
pub fn sampling_distributions_with(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: Option<&FaultConfig>,
    plan: &ReplicationPlan,
) -> MetricDistributions {
    assert!(
        plan.p > 0 && plan.q > 0,
        "plan must run at least one simulation"
    );
    let total = plan.p * plan.q;
    let mut measurements: Vec<[f64; 5]> = vec![[0.0; 5]; total];

    let threads = plan.effective_threads().min(total);
    if threads <= 1 {
        for (i, slot) in measurements.iter_mut().enumerate() {
            *slot = run_one(dag, policy, model, faults, plan.seed, i);
        }
    } else {
        let (tx, rx) = crossbeam::channel::unbounded::<usize>();
        for i in 0..total {
            tx.send(i).expect("queue open");
        }
        drop(tx);
        let chunks = std::sync::Mutex::new(Vec::<(usize, [f64; 5])>::with_capacity(total));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let rx = rx.clone();
                let chunks = &chunks;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Ok(i) = rx.recv() {
                        local.push((i, run_one(dag, policy, model, faults, plan.seed, i)));
                    }
                    chunks.lock().expect("collector lock").extend(local);
                });
            }
        });
        for (i, m) in chunks.into_inner().expect("collector lock") {
            measurements[i] = m;
        }
    }

    let column = |k: usize| -> Vec<f64> { measurements.iter().map(|m| m[k]).collect() };
    MetricDistributions {
        execution_time: SamplingDistribution::from_measurements(&column(0), plan.p, plan.q),
        stalling: SamplingDistribution::from_measurements(&column(1), plan.p, plan.q),
        utilization: SamplingDistribution::from_measurements(&column(2), plan.p, plan.q),
        failed_attempts: SamplingDistribution::from_measurements(&column(3), plan.p, plan.q),
        wasted_work: SamplingDistribution::from_measurements(&column(4), plan.p, plan.q),
    }
}

fn run_one(
    dag: &Dag,
    policy: &PolicySpec,
    model: &GridModel,
    faults: Option<&FaultConfig>,
    master: u64,
    index: usize,
) -> [f64; 5] {
    let seed = derive_seed(master, index as u64);
    let out = match faults {
        Some(f) if f.is_active() => simulate_faulty(dag, policy, model, f, seed),
        _ => simulate(dag, policy, model, seed),
    };
    let [t, s, u] = out.metrics().as_array();
    [t, s, u, out.failed_attempts as f64, out.wasted_time]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dag() -> Dag {
        Dag::from_arcs(6, &[(0, 2), (1, 2), (2, 3), (2, 4), (4, 5)]).unwrap()
    }

    #[test]
    fn distributions_have_plan_shape() {
        let dag = small_dag();
        let plan = ReplicationPlan {
            p: 4,
            q: 3,
            seed: 1,
            threads: 1,
        };
        let d = sampling_distributions(&dag, &PolicySpec::Fifo, &GridModel::paper(1.0, 2.0), &plan);
        assert_eq!(d.execution_time.p(), 4);
        assert_eq!(d.execution_time.q(), 3);
        assert_eq!(d.stalling.p(), 4);
        assert_eq!(d.utilization.p(), 4);
    }

    #[test]
    fn parallel_equals_serial() {
        let dag = small_dag();
        let model = GridModel::paper(0.7, 3.0);
        let serial = ReplicationPlan {
            p: 6,
            q: 4,
            seed: 9,
            threads: 1,
        };
        let parallel = ReplicationPlan {
            p: 6,
            q: 4,
            seed: 9,
            threads: 4,
        };
        let a = sampling_distributions(&dag, &PolicySpec::Fifo, &model, &serial);
        let b = sampling_distributions(&dag, &PolicySpec::Fifo, &model, &parallel);
        assert_eq!(a.execution_time.samples(), b.execution_time.samples());
        assert_eq!(a.stalling.samples(), b.stalling.samples());
        assert_eq!(a.utilization.samples(), b.utilization.samples());
    }

    #[test]
    fn threaded_runs_accumulate_shared_counters() {
        // The multi-threaded replication path increments the global run
        // counters from every worker thread; none may be lost. Deltas are
        // used because the registry is process-global and other tests run
        // concurrently (≥ not = for the same reason).
        let dag = small_dag();
        let model = GridModel::paper(0.7, 3.0);
        let runs_before = prio_obs::counter("sim.engine.runs").get();
        let events_before = prio_obs::counter("sim.engine.events_processed").get();
        let plan = ReplicationPlan {
            p: 8,
            q: 4,
            seed: 11,
            threads: 4,
        };
        let _ = sampling_distributions(&dag, &PolicySpec::Fifo, &model, &plan);
        let runs = prio_obs::counter("sim.engine.runs").get() - runs_before;
        let events = prio_obs::counter("sim.engine.events_processed").get() - events_before;
        assert!(
            runs >= 32,
            "8×4 threaded runs must all be counted, got {runs}"
        );
        assert!(
            events >= 32,
            "every run processes at least one event, got {events}"
        );
        assert!(
            prio_obs::gauge("sim.engine.completion_heap_high_water").get() >= 1,
            "some run must have had a job in flight"
        );
    }

    #[test]
    fn faulty_replication_is_thread_count_invariant() {
        use crate::fault::{FaultConfig, FaultModel, RetryPolicy};
        let dag = small_dag();
        let model = GridModel::paper(0.7, 3.0);
        let faults = FaultConfig {
            model: FaultModel::with_rate(0.3),
            retry: RetryPolicy::dagman(5),
        };
        let serial = ReplicationPlan {
            p: 6,
            q: 4,
            seed: 9,
            threads: 1,
        };
        let parallel = ReplicationPlan {
            threads: 4,
            ..serial
        };
        let a =
            sampling_distributions_with(&dag, &PolicySpec::Fifo, &model, Some(&faults), &serial);
        let b =
            sampling_distributions_with(&dag, &PolicySpec::Fifo, &model, Some(&faults), &parallel);
        assert_eq!(a.execution_time.samples(), b.execution_time.samples());
        assert_eq!(a.failed_attempts.samples(), b.failed_attempts.samples());
        assert_eq!(a.wasted_work.samples(), b.wasted_work.samples());
        // At rate 0.3 some run in 24 must have failed an attempt.
        assert!(a.failed_attempts.samples().iter().any(|&f| f > 0.0));
        assert!(a.wasted_work.samples().iter().any(|&w| w > 0.0));
    }

    #[test]
    fn inactive_faults_reproduce_reliable_distributions() {
        let dag = small_dag();
        let model = GridModel::paper(0.7, 3.0);
        let plan = ReplicationPlan {
            p: 4,
            q: 3,
            seed: 2,
            threads: 1,
        };
        let plain = sampling_distributions(&dag, &PolicySpec::Fifo, &model, &plan);
        let gated = sampling_distributions_with(
            &dag,
            &PolicySpec::Fifo,
            &model,
            Some(&crate::fault::FaultConfig::none()),
            &plan,
        );
        assert_eq!(
            plain.execution_time.samples(),
            gated.execution_time.samples()
        );
        assert!(plain.failed_attempts.samples().iter().all(|&f| f == 0.0));
        assert!(plain.wasted_work.samples().iter().all(|&w| w == 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let dag = small_dag();
        let model = GridModel::paper(0.7, 3.0);
        let a = sampling_distributions(
            &dag,
            &PolicySpec::Fifo,
            &model,
            &ReplicationPlan {
                p: 3,
                q: 2,
                seed: 1,
                threads: 1,
            },
        );
        let b = sampling_distributions(
            &dag,
            &PolicySpec::Fifo,
            &model,
            &ReplicationPlan {
                p: 3,
                q: 2,
                seed: 2,
                threads: 1,
            },
        );
        assert_ne!(a.execution_time.samples(), b.execution_time.samples());
    }

    #[test]
    fn sample_means_are_positive_times() {
        let dag = small_dag();
        let plan = ReplicationPlan::quick(5);
        let d = sampling_distributions(&dag, &PolicySpec::Fifo, &GridModel::paper(1.0, 4.0), &plan);
        assert!(d.execution_time.samples().iter().all(|&t| t > 0.0));
        assert!(d
            .utilization
            .samples()
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
    }
}
