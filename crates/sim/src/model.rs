//! The grid model parameters (§4.1).

use prio_stats::dist::CeilExponential;
use prio_stats::{Exponential, Geometric, TruncatedNormal};
use rand::Rng;

/// How the integer batch size is drawn (the paper says "exponentially
/// distributed with mean μ_BS" without fixing the discretization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchSizeModel {
    /// Geometric on {1, 2, …} with exact mean `μ_BS` — the discrete
    /// memoryless analog (default).
    #[default]
    Geometric,
    /// `ceil(Exp(μ_BS))` — the literal continuous sample, rounded up.
    CeilExponential,
}

/// What happens to worker requests the server cannot fill immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnfilledRequests {
    /// The paper's model: unfilled workers are "intercepted by other
    /// computations" and never come back.
    #[default]
    Discard,
    /// Ablation: unfilled workers park at the server and take the next
    /// job the moment it becomes eligible.
    Wait,
}

/// The stochastic grid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridModel {
    /// Mean batch inter-arrival time `μ_BIT` (the first batch arrives at
    /// time 0).
    pub mean_batch_interarrival: f64,
    /// Mean batch size `μ_BS`.
    pub mean_batch_size: f64,
    /// Integer batch-size model.
    pub batch_size_model: BatchSizeModel,
    /// Mean job running time (paper: 1).
    pub runtime_mean: f64,
    /// Standard deviation of the job running time (paper: 0.1).
    pub runtime_sd: f64,
    /// Probability that an assigned job fails (worker quits or returns
    /// garbage) and must be re-assigned. The paper's model is reliable
    /// (`0.0`, the default); the robustness extension sweeps this.
    pub failure_probability: f64,
    /// Fate of unfilled requests (paper: discard).
    pub unfilled: UnfilledRequests,
}

impl GridModel {
    /// The paper's model for a grid-sweep cell: job runtime `N(1, 0.1)`,
    /// geometric batch sizes.
    pub fn paper(mu_bit: f64, mu_bs: f64) -> GridModel {
        GridModel {
            mean_batch_interarrival: mu_bit,
            mean_batch_size: mu_bs,
            batch_size_model: BatchSizeModel::Geometric,
            runtime_mean: 1.0,
            runtime_sd: 0.1,
            failure_probability: 0.0,
            unfilled: UnfilledRequests::Discard,
        }
    }

    /// The paper's model with unreliable workers (robustness extension).
    pub fn with_failures(mut self, failure_probability: f64) -> GridModel {
        assert!(
            (0.0..1.0).contains(&failure_probability),
            "failure probability must be in [0, 1)"
        );
        self.failure_probability = failure_probability;
        self
    }

    /// The paper's model with parked (rather than discarded) unfilled
    /// workers (rollover ablation).
    pub fn with_waiting_workers(mut self) -> GridModel {
        self.unfilled = UnfilledRequests::Wait;
        self
    }

    /// The batch inter-arrival distribution.
    pub fn interarrival(&self) -> Exponential {
        Exponential::new(self.mean_batch_interarrival)
    }

    /// The job runtime distribution (truncated to stay positive).
    pub fn runtime(&self) -> TruncatedNormal {
        TruncatedNormal::new(self.runtime_mean, self.runtime_sd, 1e-3)
    }

    /// Draws one batch size.
    pub fn sample_batch_size<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self.batch_size_model {
            BatchSizeModel::Geometric => Geometric::new(self.mean_batch_size).sample(rng),
            BatchSizeModel::CeilExponential => {
                CeilExponential::new(self.mean_batch_size).sample(rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_stats::seeded_rng;

    #[test]
    fn paper_model_defaults() {
        let m = GridModel::paper(1.0, 16.0);
        assert_eq!(m.runtime_mean, 1.0);
        assert_eq!(m.runtime_sd, 0.1);
        assert_eq!(m.batch_size_model, BatchSizeModel::Geometric);
        assert_eq!(m.interarrival().mean(), 1.0);
    }

    #[test]
    fn batch_sizes_are_positive_under_both_models() {
        let mut rng = seeded_rng(1);
        for model in [BatchSizeModel::Geometric, BatchSizeModel::CeilExponential] {
            let m = GridModel {
                batch_size_model: model,
                ..GridModel::paper(1.0, 4.0)
            };
            for _ in 0..1000 {
                assert!(m.sample_batch_size(&mut rng) >= 1);
            }
        }
    }

    #[test]
    fn geometric_batch_mean_tracks_parameter() {
        let mut rng = seeded_rng(2);
        let m = GridModel::paper(1.0, 64.0);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| m.sample_batch_size(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 64.0).abs() / 64.0 < 0.05, "mean {mean}");
    }
}
