//! The three performance metrics of §4.1.

/// Metrics of a single simulated execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Time until all jobs of the dag completed.
    pub execution_time: f64,
    /// Fraction of observed batches that found pending work but no
    /// eligible unassigned job.
    pub stall_probability: f64,
    /// Jobs in the dag divided by the total number of requests that
    /// arrived until the batch that assigned the last job
    /// ("satisfied / requested").
    pub utilization: f64,
}

impl RunMetrics {
    /// The metric values as an array in the fixed order used by the
    /// experiment harness: execution time, stalling, utilization.
    pub fn as_array(&self) -> [f64; 3] {
        [
            self.execution_time,
            self.stall_probability,
            self.utilization,
        ]
    }

    /// Metric display names matching [`RunMetrics::as_array`].
    pub const NAMES: [&'static str; 3] = ["execution_time", "stall_probability", "utilization"];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_order_matches_names() {
        let m = RunMetrics {
            execution_time: 1.0,
            stall_probability: 0.5,
            utilization: 0.25,
        };
        assert_eq!(m.as_array(), [1.0, 0.5, 0.25]);
        assert_eq!(RunMetrics::NAMES[0], "execution_time");
        assert_eq!(RunMetrics::NAMES.len(), 3);
    }
}
