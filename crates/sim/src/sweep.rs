//! Parameter sweeps over the `μ_BIT × μ_BS` grid of Figs. 6–9.
//!
//! The paper sweeps `μ_BIT` over the powers of ten from 10⁻³ to 10³ (seven
//! sections of each plot) and `μ_BS` over the powers of two from 2⁰ to 2¹⁶
//! (seventeen points per section).

use crate::experiment::{compare_policies, compare_policies_with, ComparisonResult};
use crate::fault::{FaultConfig, FaultModel, RetryPolicy};
use crate::model::GridModel;
use crate::policy::PolicySpec;
use crate::replicate::ReplicationPlan;
use prio_core::{PrioError, Prioritizer};
use prio_graph::Dag;

/// The paper's seven mean batch inter-arrival times: `10⁻³ … 10³`.
pub fn paper_mu_bits() -> Vec<f64> {
    (-3..=3).map(|e| 10f64.powi(e)).collect()
}

/// The paper's seventeen mean batch sizes: `2⁰ … 2¹⁶`.
pub fn paper_mu_bss() -> Vec<f64> {
    (0..=16).map(|e| 2f64.powi(e)).collect()
}

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Mean batch inter-arrival time of this cell.
    pub mu_bit: f64,
    /// Mean batch size of this cell.
    pub mu_bs: f64,
    /// The policy comparison at this cell.
    pub result: ComparisonResult,
}

/// Sweeps the grid, comparing policy `a` (e.g. PRIO) against `b` (e.g.
/// FIFO) at every `(μ_BIT, μ_BS)` cell. `on_cell` is invoked after each
/// cell (progress reporting); cells are processed in row-major order
/// (`μ_BIT` outer, `μ_BS` inner) with deterministic per-cell seeds.
pub fn sweep(
    dag: &Dag,
    a: &PolicySpec,
    b: &PolicySpec,
    mu_bits: &[f64],
    mu_bss: &[f64],
    plan: &ReplicationPlan,
    mut on_cell: impl FnMut(&SweepCell),
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(mu_bits.len() * mu_bss.len());
    for (i, &mu_bit) in mu_bits.iter().enumerate() {
        for (j, &mu_bs) in mu_bss.iter().enumerate() {
            let model = GridModel::paper(mu_bit, mu_bs);
            let cell_plan = ReplicationPlan {
                seed: plan
                    .seed
                    .wrapping_add((i as u64) << 32)
                    .wrapping_add(j as u64),
                ..*plan
            };
            let result = compare_policies(dag, a, b, &model, &cell_plan);
            let cell = SweepCell {
                mu_bit,
                mu_bs,
                result,
            };
            on_cell(&cell);
            cells.push(cell);
        }
    }
    cells
}

/// One fault-intensity cell's outcome: the PRIO-vs-FIFO comparison at a
/// given per-attempt failure rate.
#[derive(Debug, Clone)]
pub struct FaultSweepCell {
    /// Per-attempt failure probability of this cell.
    pub fault_rate: f64,
    /// The policy comparison at this cell.
    pub result: ComparisonResult,
}

/// Sweeps fault intensity at a fixed model cell: compares policy `a`
/// against `b` at each per-attempt failure rate in `rates` under the
/// given retry policy. Per-cell seeds are derived from the rate index so
/// the sweep is deterministic and each cell independent. A rate of 0
/// runs the reliable engine (the §4 baseline).
pub fn sweep_fault_rates(
    dag: &Dag,
    a: &PolicySpec,
    b: &PolicySpec,
    model: &GridModel,
    rates: &[f64],
    retry: RetryPolicy,
    plan: &ReplicationPlan,
) -> Vec<FaultSweepCell> {
    rates
        .iter()
        .enumerate()
        .map(|(i, &fault_rate)| {
            let cell_plan = ReplicationPlan {
                seed: plan.seed.wrapping_add((i as u64) << 16),
                ..*plan
            };
            let faults = (fault_rate > 0.0).then(|| FaultConfig {
                model: FaultModel::with_rate(fault_rate),
                retry,
            });
            let result = compare_policies_with(dag, a, b, model, faults.as_ref(), &cell_plan);
            FaultSweepCell { fault_rate, result }
        })
        .collect()
}

/// Batch variant: prioritizes every dag through one shared pipeline
/// context ([`Prioritizer::prioritize_many`]), then sweeps PRIO vs FIFO
/// over the grid for each. One slot per input dag, in order; a pipeline
/// failure fills its slot with `Err` without affecting the other dags.
pub fn sweep_prio_vs_fifo_many(
    dags: &[Dag],
    mu_bits: &[f64],
    mu_bss: &[f64],
    plan: &ReplicationPlan,
) -> Vec<Result<Vec<SweepCell>, PrioError>> {
    Prioritizer::new()
        .prioritize_many(dags)
        .into_iter()
        .zip(dags)
        .map(|(res, dag)| {
            res.map(|r| {
                let prio = PolicySpec::Oblivious(r.schedule);
                sweep(dag, &prio, &PolicySpec::Fifo, mu_bits, mu_bss, plan, |_| {})
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_core::prio::prioritize;

    #[test]
    fn paper_grid_dimensions() {
        assert_eq!(paper_mu_bits().len(), 7);
        assert_eq!(paper_mu_bss().len(), 17);
        assert_eq!(paper_mu_bits()[0], 1e-3);
        assert_eq!(paper_mu_bits()[6], 1e3);
        assert_eq!(paper_mu_bss()[0], 1.0);
        assert_eq!(paper_mu_bss()[16], 65536.0);
    }

    #[test]
    fn tiny_sweep_runs_all_cells_in_order() {
        let dag = prio_workloads::classic::fork_join(4);
        let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
        let plan = ReplicationPlan {
            p: 3,
            q: 2,
            seed: 1,
            threads: 0,
        };
        let mut seen = Vec::new();
        let cells = sweep(
            &dag,
            &prio,
            &PolicySpec::Fifo,
            &[0.1, 1.0],
            &[1.0, 4.0],
            &plan,
            |c| seen.push((c.mu_bit, c.mu_bs)),
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(seen, vec![(0.1, 1.0), (0.1, 4.0), (1.0, 1.0), (1.0, 4.0)]);
        for c in &cells {
            assert!(c.result.execution_time_ratio.is_some());
        }
    }

    #[test]
    fn fault_sweep_covers_every_rate_and_reports_wasted_work() {
        let dag = prio_workloads::airsn::airsn(6);
        let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
        let plan = ReplicationPlan {
            p: 4,
            q: 3,
            seed: 7,
            threads: 0,
        };
        let cells = sweep_fault_rates(
            &dag,
            &prio,
            &PolicySpec::Fifo,
            &GridModel::paper(1.0, 4.0),
            &[0.0, 0.1, 0.3],
            RetryPolicy::dagman(8),
            &plan,
        );
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0].fault_rate, 0.0);
        // The baseline cell is failure-free: no wasted-work ratio exists.
        assert!(cells[0].result.wasted_work_ratio.is_none());
        assert!(cells[0]
            .result
            .a
            .failed_attempts
            .samples()
            .iter()
            .all(|&f| f == 0.0));
        // Faulty cells report makespans and (at rate 0.3) wasted work.
        for c in &cells {
            assert!(
                c.result.execution_time_ratio.is_some(),
                "rate {}",
                c.fault_rate
            );
        }
        assert!(cells[2]
            .result
            .b
            .wasted_work
            .samples()
            .iter()
            .any(|&w| w > 0.0));
    }

    #[test]
    fn batch_sweep_covers_every_dag() {
        let dags = vec![
            prio_workloads::classic::fork_join(4),
            prio_workloads::classic::fork_join(3),
        ];
        let plan = ReplicationPlan {
            p: 3,
            q: 2,
            seed: 9,
            threads: 0,
        };
        let per_dag = sweep_prio_vs_fifo_many(&dags, &[1.0], &[1.0, 2.0], &plan);
        assert_eq!(per_dag.len(), 2);
        for cells in per_dag {
            let cells = cells.unwrap();
            assert_eq!(cells.len(), 2);
            assert!(cells
                .iter()
                .all(|c| c.result.execution_time_ratio.is_some()));
        }
    }
}
