//! Parameter sweeps over the `μ_BIT × μ_BS` grid of Figs. 6–9.
//!
//! The paper sweeps `μ_BIT` over the powers of ten from 10⁻³ to 10³ (seven
//! sections of each plot) and `μ_BS` over the powers of two from 2⁰ to 2¹⁶
//! (seventeen points per section).

use crate::experiment::{compare_policies, ComparisonResult};
use crate::model::GridModel;
use crate::policy::PolicySpec;
use crate::replicate::ReplicationPlan;
use prio_core::{PrioError, Prioritizer};
use prio_graph::Dag;

/// The paper's seven mean batch inter-arrival times: `10⁻³ … 10³`.
pub fn paper_mu_bits() -> Vec<f64> {
    (-3..=3).map(|e| 10f64.powi(e)).collect()
}

/// The paper's seventeen mean batch sizes: `2⁰ … 2¹⁶`.
pub fn paper_mu_bss() -> Vec<f64> {
    (0..=16).map(|e| 2f64.powi(e)).collect()
}

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Mean batch inter-arrival time of this cell.
    pub mu_bit: f64,
    /// Mean batch size of this cell.
    pub mu_bs: f64,
    /// The policy comparison at this cell.
    pub result: ComparisonResult,
}

/// Sweeps the grid, comparing policy `a` (e.g. PRIO) against `b` (e.g.
/// FIFO) at every `(μ_BIT, μ_BS)` cell. `on_cell` is invoked after each
/// cell (progress reporting); cells are processed in row-major order
/// (`μ_BIT` outer, `μ_BS` inner) with deterministic per-cell seeds.
pub fn sweep(
    dag: &Dag,
    a: &PolicySpec,
    b: &PolicySpec,
    mu_bits: &[f64],
    mu_bss: &[f64],
    plan: &ReplicationPlan,
    mut on_cell: impl FnMut(&SweepCell),
) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(mu_bits.len() * mu_bss.len());
    for (i, &mu_bit) in mu_bits.iter().enumerate() {
        for (j, &mu_bs) in mu_bss.iter().enumerate() {
            let model = GridModel::paper(mu_bit, mu_bs);
            let cell_plan = ReplicationPlan {
                seed: plan
                    .seed
                    .wrapping_add((i as u64) << 32)
                    .wrapping_add(j as u64),
                ..*plan
            };
            let result = compare_policies(dag, a, b, &model, &cell_plan);
            let cell = SweepCell {
                mu_bit,
                mu_bs,
                result,
            };
            on_cell(&cell);
            cells.push(cell);
        }
    }
    cells
}

/// Batch variant: prioritizes every dag through one shared pipeline
/// context ([`Prioritizer::prioritize_many`]), then sweeps PRIO vs FIFO
/// over the grid for each. One slot per input dag, in order; a pipeline
/// failure fills its slot with `Err` without affecting the other dags.
pub fn sweep_prio_vs_fifo_many(
    dags: &[Dag],
    mu_bits: &[f64],
    mu_bss: &[f64],
    plan: &ReplicationPlan,
) -> Vec<Result<Vec<SweepCell>, PrioError>> {
    Prioritizer::new()
        .prioritize_many(dags)
        .into_iter()
        .zip(dags)
        .map(|(res, dag)| {
            res.map(|r| {
                let prio = PolicySpec::Oblivious(r.schedule);
                sweep(dag, &prio, &PolicySpec::Fifo, mu_bits, mu_bss, plan, |_| {})
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_core::prio::prioritize;

    #[test]
    fn paper_grid_dimensions() {
        assert_eq!(paper_mu_bits().len(), 7);
        assert_eq!(paper_mu_bss().len(), 17);
        assert_eq!(paper_mu_bits()[0], 1e-3);
        assert_eq!(paper_mu_bits()[6], 1e3);
        assert_eq!(paper_mu_bss()[0], 1.0);
        assert_eq!(paper_mu_bss()[16], 65536.0);
    }

    #[test]
    fn tiny_sweep_runs_all_cells_in_order() {
        let dag = prio_workloads::classic::fork_join(4);
        let prio = PolicySpec::Oblivious(prioritize(&dag).unwrap().schedule);
        let plan = ReplicationPlan {
            p: 3,
            q: 2,
            seed: 1,
            threads: 0,
        };
        let mut seen = Vec::new();
        let cells = sweep(
            &dag,
            &prio,
            &PolicySpec::Fifo,
            &[0.1, 1.0],
            &[1.0, 4.0],
            &plan,
            |c| seen.push((c.mu_bit, c.mu_bs)),
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(seen, vec![(0.1, 1.0), (0.1, 4.0), (1.0, 1.0), (1.0, 4.0)]);
        for c in &cells {
            assert!(c.result.execution_time_ratio.is_some());
        }
    }

    #[test]
    fn batch_sweep_covers_every_dag() {
        let dags = vec![
            prio_workloads::classic::fork_join(4),
            prio_workloads::classic::fork_join(3),
        ];
        let plan = ReplicationPlan {
            p: 3,
            q: 2,
            seed: 9,
            threads: 0,
        };
        let per_dag = sweep_prio_vs_fifo_many(&dags, &[1.0], &[1.0, 2.0], &plan);
        assert_eq!(per_dag.len(), 2);
        for cells in per_dag {
            let cells = cells.unwrap();
            assert_eq!(cells.len(), 2);
            assert!(cells
                .iter()
                .all(|c| c.result.execution_time_ratio.is_some()));
        }
    }
}
