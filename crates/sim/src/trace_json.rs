//! JSONL serialization of [`TraceEvent`]s and [`SimTelemetry`].
//!
//! Each event becomes one JSON object with a `type` field
//! (`batch_arrived`, `job_submitted`, `job_eligible`, `job_assigned`,
//! `job_completed`, `job_failed`, `job_retried`, `worker_down`,
//! `worker_up`) and the schema version tag `v` ([`SCHEMA_VERSION`]), so a
//! trace file interleaves cleanly with the
//! `span`/`counter`/`gauge`/`meta` lines the observability sink emits.
//! The fault events are additive within schema v2, and the lifecycle
//! events (`job_submitted`/`job_eligible`, plus the `worker` field on
//! `job_assigned`) within schema v3: readers of any older build skip
//! unknown record types, so newer traces degrade gracefully rather than
//! erroring, and v3 readers default a missing `worker` field to 0 when
//! replaying v1/v2 traces. Telemetry adds two more record
//! types, both carrying a `policy` field: `ts` (one per time series,
//! with the exact digest and the stored — possibly downsampled —
//! samples) and `hist` (one per non-empty histogram, summary only;
//! empty histograms — the fault ones on reliable runs — are skipped so
//! failure-free artifacts are byte-identical to pre-fault builds).
//!
//! Deserialization skips lines of other types, which makes a full
//! `--trace-out` file replayable: reading it back yields exactly the
//! in-memory [`Trace`] (floats round-trip through Rust's
//! shortest-representation `Display`). Records without a `v` field are
//! accepted as v1; records from a *newer* schema are errors.

use crate::telemetry::SimTelemetry;
use crate::trace::{Trace, TraceConsumer, TraceEvent};
use prio_graph::NodeId;
use prio_obs::json::{
    parse, write_json_f64, write_json_u64, F64Cache, JsonObject, JsonValue, SCHEMA_VERSION,
};
use prio_obs::{JobSampler, JsonlSink, TracePipeline};

/// Serializes one event as a single-line JSON object.
pub fn event_to_json(event: &TraceEvent) -> String {
    let mut buf = String::new();
    event_json_into(event, &mut buf);
    buf
}

/// Appends the single-line JSON object for `event` to `buf` (cleared
/// first), reusing `buf`'s allocation.
pub fn event_json_into(event: &TraceEvent, buf: &mut String) {
    buf.clear();
    encode_event(event, buf, &mut write_json_f64);
}

// The encoder hardcodes `"v":3` in its literal prefixes; bump them in
// lockstep with the schema.
const _: () = assert!(SCHEMA_VERSION == 3);

/// The shared encoder body: appends `event` as one JSON line, routing
/// every float field through `f` so callers choose between the plain
/// shortest-round-trip writer ([`event_json_into`]) and a formatting
/// memo cache (the trace pipeline's writer thread). Everything else is
/// literal pushes and a fmt-free digit loop — on the writer thread this
/// runs per event for multi-million-event traces, and its cost is what
/// the `obs_overhead` bench gates.
fn encode_event(event: &TraceEvent, buf: &mut String, f: &mut impl FnMut(f64, &mut String)) {
    let job_time = |kind_prefix: &str,
                    time: f64,
                    job: NodeId,
                    buf: &mut String,
                    f: &mut dyn FnMut(f64, &mut String)| {
        buf.push_str(kind_prefix);
        f(time, buf);
        buf.push_str(",\"job\":");
        write_json_u64(u64::from(job.0), buf);
    };
    match *event {
        TraceEvent::BatchArrived {
            time,
            size,
            assigned,
            stalled,
        } => {
            buf.push_str("{\"type\":\"batch_arrived\",\"v\":3,\"time\":");
            f(time, buf);
            buf.push_str(",\"size\":");
            write_json_u64(size, buf);
            buf.push_str(",\"assigned\":");
            write_json_u64(assigned as u64, buf);
            buf.push_str(",\"stalled\":");
            buf.push_str(if stalled { "true" } else { "false" });
        }
        TraceEvent::JobSubmitted { time, job } => {
            job_time(
                "{\"type\":\"job_submitted\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
        }
        TraceEvent::JobEligible { time, job } => {
            job_time(
                "{\"type\":\"job_eligible\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
        }
        TraceEvent::JobAssigned {
            time,
            job,
            completes_at,
            worker,
        } => {
            job_time(
                "{\"type\":\"job_assigned\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
            buf.push_str(",\"completes_at\":");
            f(completes_at, buf);
            buf.push_str(",\"worker\":");
            write_json_u64(worker, buf);
        }
        TraceEvent::JobCompleted { time, job } => {
            job_time(
                "{\"type\":\"job_completed\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
        }
        TraceEvent::JobFailed { time, job } => {
            job_time(
                "{\"type\":\"job_failed\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
        }
        TraceEvent::JobRetried {
            time,
            job,
            attempt,
            delay,
        } => {
            job_time(
                "{\"type\":\"job_retried\",\"v\":3,\"time\":",
                time,
                job,
                buf,
                f,
            );
            buf.push_str(",\"attempt\":");
            write_json_u64(u64::from(attempt), buf);
            buf.push_str(",\"delay\":");
            f(delay, buf);
        }
        TraceEvent::WorkerDown { time, lost } => {
            buf.push_str("{\"type\":\"worker_down\",\"v\":3,\"time\":");
            f(time, buf);
            buf.push_str(",\"lost\":");
            write_json_u64(lost, buf);
        }
        TraceEvent::WorkerUp { time } => {
            buf.push_str("{\"type\":\"worker_up\",\"v\":3,\"time\":");
            f(time, buf);
        }
    }
    buf.push('}');
}

/// A [`TracePipeline`] carrying [`TraceEvent`]s, paired with the
/// [`encode_event`] encoder over an [`F64Cache`]: producers enqueue the
/// compact event struct (a memcpy), the writer thread does all JSON
/// formatting, memoizing float fields across the simulator's heavily
/// repeated timestamps. This is the constructor behind `--trace-out`.
pub fn event_pipeline(sink: JsonlSink, capacity: usize, sample: u64) -> TracePipeline<TraceEvent> {
    let mut cache = F64Cache::new();
    TracePipeline::start(sink, capacity, sample, move |event, buf| {
        encode_event(event, buf, &mut |v, out| cache.write(v, out))
    })
}

/// [`event_pipeline`] with a parked writer (see
/// [`TracePipeline::start_deferred`]): the producing phase's wall time
/// is pure producer-side overhead, the `finish` call is pure writer
/// throughput. This is what the `obs_overhead` bench measures; the
/// caller must size `capacity` (in 256-event chunk records) for the
/// whole trace.
pub fn event_pipeline_deferred(
    sink: JsonlSink,
    capacity: usize,
    sample: u64,
) -> TracePipeline<TraceEvent> {
    let mut cache = F64Cache::new();
    TracePipeline::start_deferred(sink, capacity, sample, move |event, buf| {
        encode_event(event, buf, &mut |v, out| cache.write(v, out))
    })
}

/// Parses one JSONL line back into an event. Returns `Ok(None)` for valid
/// JSON objects of a non-event `type` (`span`, `counter`, `meta`, …) so
/// callers can stream over a mixed trace file; `Err` for anything that is
/// not a JSON object or is a malformed event.
pub fn event_from_json(line: &str) -> Result<Option<TraceEvent>, String> {
    let v = parse(line)?;
    if !v.is_object() {
        return Err(format!("not a JSON object: {line:?}"));
    }
    let kind = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing type field: {line:?}"))?;
    // v1 records carry no version tag; anything newer than we write is
    // from a future build and must not be silently misread.
    if let Some(version) = v.get("v").and_then(JsonValue::as_u64) {
        if version > SCHEMA_VERSION {
            return Err(format!(
                "record schema v{version} is newer than supported v{SCHEMA_VERSION}: {line:?}"
            ));
        }
    }
    event_from_value(&v).map_err(|e| format!("{kind}: {e}"))
}

/// Converts an already parsed JSON object into an event, if the object's
/// `type` names one. Version checking is the caller's job (the streaming
/// reader in `prio-obs` enforces it per file); this only dispatches on
/// the record type and field shape.
pub fn event_from_value(v: &JsonValue) -> Result<Option<TraceEvent>, String> {
    let kind = match v.get("type").and_then(JsonValue::as_str) {
        Some(kind) => kind,
        None => return Err("missing type field".to_string()),
    };
    let time = |v: &JsonValue| {
        v.get("time")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| "missing time".to_string())
    };
    let job = |v: &JsonValue| {
        v.get("job")
            .and_then(JsonValue::as_u64)
            .and_then(|j| u32::try_from(j).ok())
            .map(NodeId)
            .ok_or_else(|| "missing job".to_string())
    };
    let event = match kind {
        "batch_arrived" => TraceEvent::BatchArrived {
            time: time(v)?,
            size: v
                .get("size")
                .and_then(JsonValue::as_u64)
                .ok_or("missing size")?,
            assigned: v
                .get("assigned")
                .and_then(JsonValue::as_u64)
                .ok_or("missing assigned")? as usize,
            stalled: v
                .get("stalled")
                .and_then(JsonValue::as_bool)
                .ok_or("missing stalled")?,
        },
        "job_submitted" => TraceEvent::JobSubmitted {
            time: time(v)?,
            job: job(v)?,
        },
        "job_eligible" => TraceEvent::JobEligible {
            time: time(v)?,
            job: job(v)?,
        },
        "job_assigned" => TraceEvent::JobAssigned {
            time: time(v)?,
            job: job(v)?,
            completes_at: v
                .get("completes_at")
                .and_then(JsonValue::as_f64)
                .ok_or("missing completes_at")?,
            // Absent in v1/v2 traces (the field is new in v3).
            worker: v.get("worker").and_then(JsonValue::as_u64).unwrap_or(0),
        },
        "job_completed" => TraceEvent::JobCompleted {
            time: time(v)?,
            job: job(v)?,
        },
        "job_failed" => TraceEvent::JobFailed {
            time: time(v)?,
            job: job(v)?,
        },
        "job_retried" => TraceEvent::JobRetried {
            time: time(v)?,
            job: job(v)?,
            attempt: v
                .get("attempt")
                .and_then(JsonValue::as_u64)
                .and_then(|a| u32::try_from(a).ok())
                .ok_or("missing attempt")?,
            delay: v
                .get("delay")
                .and_then(JsonValue::as_f64)
                .ok_or("missing delay")?,
        },
        "worker_down" => TraceEvent::WorkerDown {
            time: time(v)?,
            lost: v
                .get("lost")
                .and_then(JsonValue::as_u64)
                .ok_or("missing lost")?,
        },
        "worker_up" => TraceEvent::WorkerUp { time: time(v)? },
        _ => return Ok(None),
    };
    Ok(Some(event))
}

/// The production [`TraceConsumer`]: enqueues each event by value into
/// the bounded async [`TracePipeline`] (lossy on overflow — counted,
/// never blocking the sim clock). The hot path costs a sampler hash plus
/// one lock-free push; JSON encoding happens on the pipeline's writer
/// thread.
///
/// A [`JobSampler`] with modulus > 1 thins *job-scoped* events to the
/// sampler's deterministic 1/N subset while keeping every run-scoped
/// event (`batch_arrived`, `worker_down`, `worker_up`), so a sampled
/// trace preserves complete lifecycle causality for each kept job and
/// the full batch/churn timeline. Aggregate telemetry is collected by
/// the engine regardless and stays exact.
#[derive(Debug)]
pub struct StreamingTraceWriter<'a> {
    pipeline: &'a TracePipeline<TraceEvent>,
    sampler: JobSampler,
    /// Local event buffer, handed to the pipeline as one chunk when it
    /// reaches `chunk` events (and at [`TraceConsumer::flush`]). The
    /// ring push is a CAS plus a pointer-sized memcpy, but at simulator
    /// emission rates even that cross-core cache traffic shows up;
    /// batching divides it by the chunk size.
    buffer: std::cell::RefCell<Vec<TraceEvent>>,
    chunk: usize,
    /// Pre-faulted replacement buffers ([`Self::with_chunk_pool`]);
    /// empty for ordinary writers, which allocate replacements on
    /// demand.
    pool: std::cell::RefCell<Vec<Vec<TraceEvent>>>,
}

/// Events buffered locally per ring push. Amortizes queue traffic to a
/// fraction of a nanosecond per event while bounding both the latency of
/// an event reaching disk and the chunk's drop granularity.
pub const DEFAULT_CHUNK_EVENTS: usize = 256;

impl<'a> StreamingTraceWriter<'a> {
    /// A writer streaming into `pipeline`, keeping the jobs `sampler`
    /// selects (use [`JobSampler::full_rate`] for lossless job
    /// coverage).
    pub fn new(
        pipeline: &'a TracePipeline<TraceEvent>,
        sampler: JobSampler,
    ) -> StreamingTraceWriter<'a> {
        Self::with_chunk(pipeline, sampler, DEFAULT_CHUNK_EVENTS)
    }

    /// Like [`StreamingTraceWriter::new`] with an explicit chunk size.
    /// Chunks are dropped whole when the ring overflows, so callers
    /// exercising tiny rings (tests, `--trace-ring` experiments) should
    /// keep `chunk` at or below the ring capacity.
    pub fn with_chunk(
        pipeline: &'a TracePipeline<TraceEvent>,
        sampler: JobSampler,
        chunk: usize,
    ) -> StreamingTraceWriter<'a> {
        let chunk = chunk.max(1);
        StreamingTraceWriter {
            pipeline,
            sampler,
            buffer: std::cell::RefCell::new(Vec::with_capacity(chunk)),
            chunk,
            pool: std::cell::RefCell::new(Vec::new()),
        }
    }

    /// Like [`StreamingTraceWriter::new`], but with `pool_chunks`
    /// replacement buffers allocated — and their pages faulted in — up
    /// front. Ordinary (concurrent-drain) writers do not need this: the
    /// writer thread frees chunks as it drains, so the allocator
    /// recycles warm memory and steady-state chunk swaps touch no new
    /// pages. A *deferred-drain* pipeline instead buffers the whole
    /// trace, and every replacement buffer would fault fresh pages
    /// inside whatever the caller is measuring; pre-faulting moves that
    /// one-time cost into setup. The pool is best-effort — when it runs
    /// dry the writer falls back to plain allocation.
    pub fn with_chunk_pool(
        pipeline: &'a TracePipeline<TraceEvent>,
        sampler: JobSampler,
        pool_chunks: usize,
    ) -> StreamingTraceWriter<'a> {
        let writer = Self::new(pipeline, sampler);
        let filler = TraceEvent::WorkerUp { time: 0.0 };
        let pool = (0..pool_chunks)
            .map(|_| {
                // `vec![filler; n]` writes every element, faulting the
                // buffer's pages; clearing keeps the warm capacity.
                let mut buf = vec![filler; writer.chunk];
                buf.clear();
                buf
            })
            .collect();
        *writer.pool.borrow_mut() = pool;
        writer
    }

    /// The node id an event is scoped to, if it is job-scoped.
    fn job_of(event: &TraceEvent) -> Option<NodeId> {
        match *event {
            TraceEvent::JobSubmitted { job, .. }
            | TraceEvent::JobEligible { job, .. }
            | TraceEvent::JobAssigned { job, .. }
            | TraceEvent::JobCompleted { job, .. }
            | TraceEvent::JobFailed { job, .. }
            | TraceEvent::JobRetried { job, .. } => Some(job),
            TraceEvent::BatchArrived { .. }
            | TraceEvent::WorkerDown { .. }
            | TraceEvent::WorkerUp { .. } => None,
        }
    }
}

impl TraceConsumer for StreamingTraceWriter<'_> {
    fn consume(&self, event: &TraceEvent) {
        if self.sampler.is_sampling() {
            if let Some(job) = Self::job_of(event) {
                if !self.sampler.keeps_id(u64::from(job.0)) {
                    return;
                }
            }
        }
        let mut buffer = self.buffer.borrow_mut();
        buffer.push(*event);
        if buffer.len() >= self.chunk {
            let replacement = self
                .pool
                .borrow_mut()
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(self.chunk));
            let full = std::mem::replace(&mut *buffer, replacement);
            self.pipeline.chunk(full);
        }
    }

    fn consume_batch(&self, events: &[TraceEvent]) {
        if self.sampler.is_sampling() {
            // Sampling filters per event; the batch only amortized the
            // engine-side handoff.
            for event in events {
                self.consume(event);
            }
            return;
        }
        // Full rate keeps everything: ingest the slice wholesale,
        // splitting on chunk boundaries. The common case — an empty
        // buffer receiving a batch of exactly `chunk` events — is one
        // memcpy and one ring push.
        let mut buffer = self.buffer.borrow_mut();
        let mut rest = events;
        while !rest.is_empty() {
            let room = self.chunk - buffer.len();
            let (head, tail) = rest.split_at(room.min(rest.len()));
            buffer.extend_from_slice(head);
            rest = tail;
            if buffer.len() >= self.chunk {
                let replacement = self
                    .pool
                    .borrow_mut()
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(self.chunk));
                let full = std::mem::replace(&mut *buffer, replacement);
                self.pipeline.chunk(full);
            }
        }
    }

    fn flush(&self) {
        let tail = std::mem::take(&mut *self.buffer.borrow_mut());
        self.pipeline.chunk(tail);
    }
}

/// Writes every event of `trace` to `sink`, one line each.
pub fn write_trace(sink: &JsonlSink, trace: &Trace) -> std::io::Result<()> {
    for event in trace {
        sink.write_line(&event_to_json(event))?;
    }
    Ok(())
}

/// Serializes one run's telemetry as JSONL lines tagged with the policy
/// that produced it: one `ts` line per time series (exact digest plus the
/// stored samples) and one `hist` line per latency histogram (summary in
/// milli-timeunits).
pub fn telemetry_to_json(policy: &str, telemetry: &SimTelemetry) -> Vec<String> {
    let mut lines = Vec::with_capacity(6);
    for (series, ts) in telemetry.series() {
        let d = ts.digest();
        lines.push(
            JsonObject::typed("ts")
                .str("policy", policy)
                .str("series", series)
                .u64("pushed", d.pushed)
                .f64("peak", d.peak)
                .f64("peak_t", d.peak_t)
                .f64("mean", d.mean)
                .f64("last_t", d.last_t)
                .f64("last_v", d.last_v)
                .pairs("samples", ts.samples())
                .finish(),
        );
    }
    for (name, hist) in telemetry.histograms() {
        let s = hist.summary();
        // Empty histograms (the fault ones on failure-free runs) are
        // skipped so reliable-run artifacts match pre-fault builds.
        if s.count == 0 {
            continue;
        }
        lines.push(
            JsonObject::typed("hist")
                .str("policy", policy)
                .str("name", name)
                .u64("count", s.count)
                .f64("mean", s.mean)
                .u64("p50", s.p50)
                .u64("p90", s.p90)
                .u64("p99", s.p99)
                .u64("max", s.max)
                .finish(),
        );
    }
    lines
}

/// Writes one run's telemetry to `sink` via [`telemetry_to_json`].
pub fn write_telemetry(
    sink: &JsonlSink,
    policy: &str,
    telemetry: &SimTelemetry,
) -> std::io::Result<()> {
    for line in telemetry_to_json(policy, telemetry) {
        sink.write_line(&line)?;
    }
    Ok(())
}

/// Reads the events out of JSONL `text`, skipping non-event lines (span
/// and counter snapshots, metadata) and blank lines.
pub fn read_trace(text: &str) -> Result<Trace, String> {
    let mut trace = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(event) = event_from_json(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            trace.push(event);
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        vec![
            TraceEvent::JobSubmitted {
                time: 0.0,
                job: NodeId(0),
            },
            TraceEvent::JobEligible {
                time: 0.0,
                job: NodeId(0),
            },
            TraceEvent::BatchArrived {
                time: 0.0,
                size: 3,
                assigned: 2,
                stalled: false,
            },
            TraceEvent::JobAssigned {
                time: 0.0,
                job: NodeId(0),
                completes_at: 1.0625,
                worker: 1,
            },
            TraceEvent::JobAssigned {
                time: 0.0,
                job: NodeId(4),
                completes_at: 0.97,
                worker: 2,
            },
            TraceEvent::JobFailed {
                time: 0.97,
                job: NodeId(4),
            },
            TraceEvent::JobRetried {
                time: 1.47,
                job: NodeId(4),
                attempt: 2,
                delay: 0.5,
            },
            TraceEvent::WorkerDown { time: 1.5, lost: 2 },
            TraceEvent::WorkerUp { time: 2.25 },
            TraceEvent::JobCompleted {
                time: 1.0625,
                job: NodeId(0),
            },
            TraceEvent::BatchArrived {
                time: 2.5,
                size: 1,
                assigned: 0,
                stalled: true,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in sample_trace() {
            let line = event_to_json(&event);
            let back = event_from_json(&line).unwrap().expect("event line");
            assert_eq!(back, event, "via {line}");
        }
    }

    #[test]
    fn read_trace_skips_non_event_lines() {
        let mut text = String::from("{\"type\":\"meta\",\"command\":\"simulate\"}\n");
        for event in sample_trace() {
            text.push_str(&event_to_json(&event));
            text.push('\n');
        }
        text.push_str("{\"type\":\"counter\",\"name\":\"sim.engine.runs\",\"value\":1}\n");
        assert_eq!(read_trace(&text).unwrap(), sample_trace());
    }

    #[test]
    fn malformed_lines_are_errors_not_skips() {
        assert!(read_trace("{\"type\":\"job_completed\",\"time\":1.0}").is_err());
        assert!(read_trace("not json").is_err());
        assert!(read_trace("[1,2]").is_err());
    }

    #[test]
    fn every_event_record_is_version_tagged() {
        for event in sample_trace() {
            let line = event_to_json(&event);
            let v = parse(&line).unwrap();
            assert_eq!(
                v.get("v").and_then(JsonValue::as_u64),
                Some(SCHEMA_VERSION),
                "untagged record: {line}"
            );
        }
    }

    #[test]
    fn v1_records_are_accepted_and_future_versions_rejected() {
        // A v1 line (no `v` field) still parses.
        let v1 = "{\"type\":\"job_completed\",\"time\":1.5,\"job\":3}";
        assert_eq!(
            event_from_json(v1).unwrap(),
            Some(TraceEvent::JobCompleted {
                time: 1.5,
                job: NodeId(3),
            })
        );
        // A line claiming a newer schema is an error, not a skip.
        let future = format!(
            "{{\"type\":\"job_completed\",\"v\":{},\"time\":1.5,\"job\":3}}",
            SCHEMA_VERSION + 1
        );
        let err = event_from_json(&future).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn v2_assignments_without_worker_default_to_zero() {
        // Pre-v3 writers never emitted the worker field.
        let v2 = "{\"type\":\"job_assigned\",\"v\":2,\"time\":0.5,\"job\":7,\"completes_at\":1.5}";
        assert_eq!(
            event_from_json(v2).unwrap(),
            Some(TraceEvent::JobAssigned {
                time: 0.5,
                job: NodeId(7),
                completes_at: 1.5,
                worker: 0,
            })
        );
    }

    /// A Write appending into a shared buffer for read-back.
    #[derive(Clone)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_writer_samples_job_events_but_keeps_run_events() {
        use crate::trace::TraceConsumer as _;

        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        let pipeline = event_pipeline(sink, 1 << 10, 4);
        let sampler = JobSampler::new(4);
        let writer = StreamingTraceWriter::new(&pipeline, sampler);
        for event in sample_trace() {
            writer.consume(&event);
        }
        writer.flush();
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(stats.dropped, 0);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let written = read_trace(&text).unwrap();
        // Run-scoped events always survive; job-scoped events survive
        // iff the sampler keeps their node id — exactly the events the
        // same filter selects from the original trace.
        let expected: Trace = sample_trace()
            .into_iter()
            .filter(|e| match StreamingTraceWriter::job_of(e) {
                Some(job) => sampler.keeps_id(u64::from(job.0)),
                None => true,
            })
            .collect();
        assert_eq!(written, expected);
        assert_eq!(
            written
                .iter()
                .filter(|e| StreamingTraceWriter::job_of(e).is_none())
                .count(),
            4,
            "both batches and the worker down/up pair survive sampling"
        );
    }

    #[test]
    fn full_rate_streaming_writer_round_trips_every_event() {
        use crate::trace::TraceConsumer as _;

        let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = JsonlSink::to_writer(Box::new(SharedBuf(buf.clone())));
        let pipeline = event_pipeline(sink, 1 << 10, 1);
        let writer = StreamingTraceWriter::new(&pipeline, JobSampler::full_rate());
        for event in sample_trace() {
            writer.consume(&event);
        }
        writer.flush();
        let (_sink, stats, result) = pipeline.finish();
        result.unwrap();
        assert_eq!(stats.dropped, 0);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(read_trace(&text).unwrap(), sample_trace());
    }

    #[test]
    fn telemetry_serializes_and_interleaves_with_events() {
        let mut telemetry = SimTelemetry::new();
        telemetry.record_step(0.0, 3, 2, 0, 0.0);
        telemetry.record_step(1.5, 4, 1, 0, 0.75);
        telemetry.record_wait(0.5);
        telemetry.record_service(1.0);

        let lines = telemetry_to_json("prio", &telemetry);
        assert_eq!(lines.len(), 6, "4 series + 2 histograms");
        for line in &lines {
            let v = parse(line).unwrap_or_else(|e| panic!("invalid {line:?}: {e}"));
            assert_eq!(v.get("v").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
            assert_eq!(v.get("policy").and_then(JsonValue::as_str), Some("prio"));
        }
        let eligible = parse(&lines[0]).unwrap();
        assert_eq!(
            eligible.get("series").and_then(JsonValue::as_str),
            Some("eligible_pool")
        );
        assert_eq!(eligible.get("peak").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(eligible.get("pushed").and_then(JsonValue::as_u64), Some(2));
        let wait = parse(&lines[4]).unwrap();
        assert_eq!(
            wait.get("name").and_then(JsonValue::as_str),
            Some("job_wait_milli")
        );
        assert_eq!(wait.get("max").and_then(JsonValue::as_u64), Some(500));

        // Telemetry lines interleaved with events are skipped by the
        // event reader, exactly like span/counter lines.
        let mut text = String::new();
        for event in sample_trace() {
            text.push_str(&event_to_json(&event));
            text.push('\n');
        }
        for line in &lines {
            text.push_str(line);
            text.push('\n');
        }
        assert_eq!(read_trace(&text).unwrap(), sample_trace());
    }
}
