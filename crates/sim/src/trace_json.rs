//! JSONL serialization of [`TraceEvent`]s.
//!
//! Each event becomes one JSON object with a `type` field
//! (`batch_arrived`, `job_assigned`, `job_completed`, `job_failed`), so a
//! trace file interleaves cleanly with the `span`/`counter`/`meta` lines
//! the observability sink emits. Deserialization skips lines of other
//! types, which makes a full `--trace-out` file replayable: reading it
//! back yields exactly the in-memory [`Trace`] (floats round-trip through
//! Rust's shortest-representation `Display`).

use crate::trace::{Trace, TraceEvent};
use prio_graph::NodeId;
use prio_obs::json::{parse, JsonObject, JsonValue};
use prio_obs::JsonlSink;

/// Serializes one event as a single-line JSON object.
pub fn event_to_json(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::BatchArrived {
            time,
            size,
            assigned,
            stalled,
        } => JsonObject::typed("batch_arrived")
            .f64("time", time)
            .u64("size", size)
            .u64("assigned", assigned as u64)
            .bool("stalled", stalled)
            .finish(),
        TraceEvent::JobAssigned {
            time,
            job,
            completes_at,
        } => JsonObject::typed("job_assigned")
            .f64("time", time)
            .u64("job", u64::from(job.0))
            .f64("completes_at", completes_at)
            .finish(),
        TraceEvent::JobCompleted { time, job } => JsonObject::typed("job_completed")
            .f64("time", time)
            .u64("job", u64::from(job.0))
            .finish(),
        TraceEvent::JobFailed { time, job } => JsonObject::typed("job_failed")
            .f64("time", time)
            .u64("job", u64::from(job.0))
            .finish(),
    }
}

/// Parses one JSONL line back into an event. Returns `Ok(None)` for valid
/// JSON objects of a non-event `type` (`span`, `counter`, `meta`, …) so
/// callers can stream over a mixed trace file; `Err` for anything that is
/// not a JSON object or is a malformed event.
pub fn event_from_json(line: &str) -> Result<Option<TraceEvent>, String> {
    let v = parse(line)?;
    if !v.is_object() {
        return Err(format!("not a JSON object: {line:?}"));
    }
    let kind = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing type field: {line:?}"))?;
    let time = |v: &JsonValue| {
        v.get("time")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| "missing time".to_string())
    };
    let job = |v: &JsonValue| {
        v.get("job")
            .and_then(JsonValue::as_u64)
            .and_then(|j| u32::try_from(j).ok())
            .map(NodeId)
            .ok_or_else(|| "missing job".to_string())
    };
    let event = match kind {
        "batch_arrived" => TraceEvent::BatchArrived {
            time: time(&v)?,
            size: v
                .get("size")
                .and_then(JsonValue::as_u64)
                .ok_or("missing size")?,
            assigned: v
                .get("assigned")
                .and_then(JsonValue::as_u64)
                .ok_or("missing assigned")? as usize,
            stalled: v
                .get("stalled")
                .and_then(JsonValue::as_bool)
                .ok_or("missing stalled")?,
        },
        "job_assigned" => TraceEvent::JobAssigned {
            time: time(&v)?,
            job: job(&v)?,
            completes_at: v
                .get("completes_at")
                .and_then(JsonValue::as_f64)
                .ok_or("missing completes_at")?,
        },
        "job_completed" => TraceEvent::JobCompleted {
            time: time(&v)?,
            job: job(&v)?,
        },
        "job_failed" => TraceEvent::JobFailed {
            time: time(&v)?,
            job: job(&v)?,
        },
        _ => return Ok(None),
    };
    Ok(Some(event))
}

/// Writes every event of `trace` to `sink`, one line each.
pub fn write_trace(sink: &JsonlSink, trace: &Trace) -> std::io::Result<()> {
    for event in trace {
        sink.write_line(&event_to_json(event))?;
    }
    Ok(())
}

/// Reads the events out of JSONL `text`, skipping non-event lines (span
/// and counter snapshots, metadata) and blank lines.
pub fn read_trace(text: &str) -> Result<Trace, String> {
    let mut trace = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(event) = event_from_json(line).map_err(|e| format!("line {}: {e}", i + 1))? {
            trace.push(event);
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        vec![
            TraceEvent::BatchArrived {
                time: 0.0,
                size: 3,
                assigned: 2,
                stalled: false,
            },
            TraceEvent::JobAssigned {
                time: 0.0,
                job: NodeId(0),
                completes_at: 1.0625,
            },
            TraceEvent::JobAssigned {
                time: 0.0,
                job: NodeId(4),
                completes_at: 0.97,
            },
            TraceEvent::JobFailed {
                time: 0.97,
                job: NodeId(4),
            },
            TraceEvent::JobCompleted {
                time: 1.0625,
                job: NodeId(0),
            },
            TraceEvent::BatchArrived {
                time: 2.5,
                size: 1,
                assigned: 0,
                stalled: true,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for event in sample_trace() {
            let line = event_to_json(&event);
            let back = event_from_json(&line).unwrap().expect("event line");
            assert_eq!(back, event, "via {line}");
        }
    }

    #[test]
    fn read_trace_skips_non_event_lines() {
        let mut text = String::from("{\"type\":\"meta\",\"command\":\"simulate\"}\n");
        for event in sample_trace() {
            text.push_str(&event_to_json(&event));
            text.push('\n');
        }
        text.push_str("{\"type\":\"counter\",\"name\":\"sim.runs\",\"value\":1}\n");
        assert_eq!(read_trace(&text).unwrap(), sample_trace());
    }

    #[test]
    fn malformed_lines_are_errors_not_skips() {
        assert!(read_trace("{\"type\":\"job_completed\",\"time\":1.0}").is_err());
        assert!(read_trace("not json").is_err());
        assert!(read_trace("[1,2]").is_err());
    }
}
