//! Optional event tracing for tests and debugging.

use prio_graph::NodeId;

/// One simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A batch of worker requests arrived.
    BatchArrived {
        /// Arrival time.
        time: f64,
        /// Number of requests in the batch.
        size: u64,
        /// How many jobs were assigned from this batch.
        assigned: usize,
        /// Whether the batch found pending work but nothing assignable.
        stalled: bool,
    },
    /// A job was handed to a worker.
    JobAssigned {
        /// Assignment time.
        time: f64,
        /// The job.
        job: NodeId,
        /// Scheduled completion time.
        completes_at: f64,
    },
    /// A worker returned a job's results.
    JobCompleted {
        /// Completion time.
        time: f64,
        /// The job.
        job: NodeId,
    },
    /// A worker failed; the job re-entered the eligible queue
    /// (robustness extension; never emitted under the paper's reliable
    /// model).
    JobFailed {
        /// Failure time.
        time: f64,
        /// The job.
        job: NodeId,
    },
}

/// A recorded event sequence.
pub type Trace = Vec<TraceEvent>;
