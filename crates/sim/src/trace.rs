//! Optional event tracing for tests and debugging.

use prio_graph::NodeId;

/// One simulator event. `Copy` is load-bearing: the streaming trace
/// writer enqueues events by value into the bounded ring, so the hot
/// emission path is a register-sized memcpy, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A batch of worker requests arrived.
    BatchArrived {
        /// Arrival time.
        time: f64,
        /// Number of requests in the batch.
        size: u64,
        /// How many jobs were assigned from this batch.
        assigned: usize,
        /// Whether the batch found pending work but nothing assignable.
        stalled: bool,
    },
    /// A job entered the run (schema v3): one per DAG node at run start,
    /// in node-id order, before any scheduling happens.
    JobSubmitted {
        /// Submission time (always the run's start, `0.0`).
        time: f64,
        /// The job.
        job: NodeId,
    },
    /// A job became eligible to run — all parents done (schema v3).
    /// Sources are eligible at time `0.0`; other jobs when their last
    /// parent completes; failed jobs re-enter eligibility via this event
    /// (legacy failure model) or `JobRetried` (fault-injection layer).
    JobEligible {
        /// Eligibility time.
        time: f64,
        /// The job.
        job: NodeId,
    },
    /// A job was handed to a worker.
    JobAssigned {
        /// Assignment time.
        time: f64,
        /// The job.
        job: NodeId,
        /// Scheduled completion time.
        completes_at: f64,
        /// Serving worker id (schema v3): sequential per run over
        /// granted requests. v1/v2 traces default it to 0 on read.
        worker: u64,
    },
    /// A worker returned a job's results.
    JobCompleted {
        /// Completion time.
        time: f64,
        /// The job.
        job: NodeId,
    },
    /// A worker failed; the job re-entered the eligible queue
    /// (robustness extension; never emitted under the paper's reliable
    /// model).
    JobFailed {
        /// Failure time.
        time: f64,
        /// The job.
        job: NodeId,
    },
    /// A transiently failed job re-entered the eligible queue after its
    /// retry backoff (fault-injection layer only).
    JobRetried {
        /// Re-entry time.
        time: f64,
        /// The job.
        job: NodeId,
        /// The attempt number about to run (1-based; attempt 2 is the
        /// first retry).
        attempt: u32,
        /// Backoff delay applied before this re-entry, in sim timeunits.
        delay: f64,
    },
    /// The worker pool went down; every in-flight job failed
    /// transiently (fault-injection layer only).
    WorkerDown {
        /// Outage time.
        time: f64,
        /// In-flight jobs killed by the outage.
        lost: u64,
    },
    /// The worker pool came back up (fault-injection layer only).
    WorkerUp {
        /// Recovery time.
        time: f64,
    },
}

/// A recorded event sequence.
pub type Trace = Vec<TraceEvent>;

/// Events the engine buffers locally between [`TraceConsumer`] calls: a
/// plain `Vec` push per event, one `consume_batch` per this many. Kept
/// equal to the writer's chunk size so a full-rate batch becomes exactly
/// one chunk.
pub const STREAM_BATCH_EVENTS: usize = 256;

/// A streaming consumer of trace events, called synchronously at each
/// emission site instead of (or alongside) buffering into a [`Trace`].
///
/// `consume` takes `&self` so one consumer can be shared by reference
/// with the engine; implementations needing state use interior
/// mutability (the production consumer — `StreamingTraceWriter` over the
/// `prio-obs` trace pipeline — only ever enqueues into a lock-free
/// ring). Implementations must not block: the simulator clock runs
/// through this call.
pub trait TraceConsumer {
    /// Receives one event, in emission order.
    fn consume(&self, event: &TraceEvent);

    /// Receives a run of consecutive events, in emission order. The
    /// engine batches emissions ([`STREAM_BATCH_EVENTS`] at a time) so
    /// the consumer boundary is crossed once per batch instead of once
    /// per event; consumers that can ingest a slice wholesale (the
    /// production `StreamingTraceWriter` memcpys it into its chunk
    /// buffer) override this. The default forwards to [`Self::consume`]
    /// per event, so per-event consumers observe the same sequence
    /// either way.
    fn consume_batch(&self, events: &[TraceEvent]) {
        for event in events {
            self.consume(event);
        }
    }

    /// Called once by the engine when a run finishes, after the last
    /// event. Consumers that batch events internally (the production
    /// `StreamingTraceWriter` chunks them to amortize queue traffic)
    /// hand their tail downstream here; the default is a no-op.
    fn flush(&self) {}
}
