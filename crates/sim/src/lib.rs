//! # prio-sim — the stochastic grid simulator (§4)
//!
//! Models a grid as the paper does: a centralized server holds the jobs of
//! one dag; *batches* of workers arrive with exponentially distributed
//! inter-arrival times (mean `μ_BIT`), each batch carrying a random number
//! of one-job requests (mean `μ_BS`); job running times are normal with
//! mean 1 and standard deviation 0.1; requests that cannot be served are
//! discarded (those workers are "intercepted by other computations").
//!
//! Two scheduling regimens are compared ([`policy`]): an **oblivious**
//! policy assigns eligible jobs in a fixed total order (instantiated with
//! the PRIO schedule this is the paper's PRIO algorithm), and **FIFO**
//! assigns them in the order they became eligible (what DAGMan does).
//!
//! The simulator ([`engine`]) is event-driven and fully deterministic per
//! seed. Metrics ([`metrics`]): expected execution time, probability of
//! stalling, expected utilization. The experiment layer ([`experiment`],
//! [`replicate`], [`sweep`]) reproduces §4.2's methodology: empirical
//! sampling distributions from `p` samples of `q`-run averages, ratio
//! confidence intervals from all `p²` pairs, swept over the
//! `μ_BIT × μ_BS` grid of Figs. 6–9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod fault;
pub mod metrics;
pub mod model;
pub mod policy;
pub mod replicate;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod trace_json;

pub use engine::{simulate, simulate_faulty, simulate_streamed, JobOutcome, SimOutcome};
pub use experiment::{compare_policies, ComparisonResult};
pub use fault::{Backoff, FaultConfig, FaultModel, RetryPolicy};
pub use metrics::RunMetrics;
pub use model::{BatchSizeModel, GridModel};
pub use policy::PolicySpec;
pub use telemetry::SimTelemetry;
