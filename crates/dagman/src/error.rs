//! Error types for DAGMan and JSDF parsing.

use prio_ir::{FormatId, ImportError, PrioError};
use std::fmt;

/// Errors produced while parsing or instrumenting DAGMan/JSDF files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagmanError {
    /// A statement was malformed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `PARENT`/`CHILD` or `VARS` statement referenced an undeclared job.
    UnknownJob {
        /// 1-based line number.
        line: usize,
        /// The unknown job name.
        job: String,
    },
    /// The same job name was declared twice.
    DuplicateJob {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The duplicated job name.
        job: String,
    },
    /// The dependencies contain a cycle.
    Cyclic {
        /// A job on the cycle.
        job: String,
    },
}

impl fmt::Display for DagmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagmanError::Malformed { line, message } => {
                write!(f, "line {line}: {message}")
            }
            DagmanError::UnknownJob { line, job } => {
                write!(f, "line {line}: unknown job {job:?}")
            }
            DagmanError::DuplicateJob { line, job } => {
                write!(f, "line {line}: duplicate job {job:?}")
            }
            DagmanError::Cyclic { job } => {
                write!(f, "dependency cycle through job {job:?}")
            }
        }
    }
}

impl std::error::Error for DagmanError {}

impl From<DagmanError> for ImportError {
    fn from(e: DagmanError) -> ImportError {
        let (line, message) = match &e {
            DagmanError::Malformed { line, message } => (*line, message.clone()),
            DagmanError::UnknownJob { line, job } => (*line, format!("unknown job {job:?}")),
            DagmanError::DuplicateJob { line, job } => (*line, format!("duplicate job {job:?}")),
            DagmanError::Cyclic { job } => (0, format!("dependency cycle through job {job:?}")),
        };
        ImportError {
            format: FormatId::Dagman,
            line,
            message,
        }
    }
}

impl From<DagmanError> for PrioError {
    fn from(e: DagmanError) -> PrioError {
        PrioError::Parse(e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = DagmanError::Malformed {
            line: 3,
            message: "JOB needs a file".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DagmanError::UnknownJob {
            line: 9,
            job: "x".into(),
        };
        assert!(e.to_string().contains("\"x\""));
        let e = DagmanError::Cyclic { job: "a".into() };
        assert!(e.to_string().contains("cycle"));
    }
}
