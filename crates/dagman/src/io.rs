//! Input loading for DAGMan files.
//!
//! At 10⁷–10⁸ jobs the input text itself is gigabytes; letting
//! `read_to_string` grow its buffer by doubling both copies the text
//! O(log n) times and transiently holds ~2× the file size. [`read_input`]
//! pre-sizes the buffer from file metadata so the text is read exactly
//! once into exactly one allocation.
//!
//! The `mmap` cargo feature selects the zero-copy-intentioned input path
//! explicitly. A true `mmap(2)` is deliberately **not** implemented: this
//! crate is `#![forbid(unsafe_code)]` and the workspace bakes in no libc
//! bindings, and memory-mapping is impossible under both constraints. The
//! feature instead guarantees the pre-sized single-read implementation
//! (and reserves the name so an unsafe-permitting build could swap a real
//! mapping in behind the same API without callers changing).

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// Reads a DAGMan input file into a single pre-sized allocation.
pub fn read_input(path: &Path) -> io::Result<String> {
    let mut file = File::open(path)?;
    let size = file.metadata().map(|m| m.len() as usize).unwrap_or(0);
    prio_obs::counter("dagman.parse.bytes_read").add(size as u64);
    let mut text = String::with_capacity(size.saturating_add(1));
    file.read_to_string(&mut text)?;
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_whole_file() {
        let dir = std::env::temp_dir().join("prio_dagman_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("t.dag");
        std::fs::write(&p, "JOB a a.sub\n").unwrap();
        assert_eq!(read_input(&p).unwrap(), "JOB a a.sub\n");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_input(Path::new("/nonexistent/x.dag")).is_err());
    }
}
