//! The DAGMan frontend: the Condor importer/exporter pair over the
//! workflow IR, plus the full format registry.
//!
//! Importing maps `JOB`/`SUBDAG EXTERNAL` statements to IR jobs (submit
//! files, subdag files and extra `JOB` options become per-job metadata,
//! stored sparsely — a submit file equal to the `<name>.submit` default is
//! not recorded), `PARENT … CHILD` products to arcs, and
//! `VARS … jobpriority="p"` / `PRIORITY` statements to IR priorities.
//! Exporting produces the canonical instrumented layout: one `JOB` (or
//! `SUBDAG EXTERNAL`) per job in index order, each directly followed by
//! its priority statement when one is assigned (the paper's Fig. 3 shape),
//! then one single-parent `PARENT … CHILD` statement per non-sink —
//! single-parent so that even a job named `child` re-parses unambiguously.

use crate::ast::{DagmanFile, JobName, Statement};
use crate::error::DagmanError;
use crate::instrument::JOBPRIORITY;
use crate::parse::parse_dagman;
use crate::write::write_dagman;
use prio_ir::{
    FormatId, FormatRegistry, Frontend, ImportError, PrioError, Priorities, Workflow,
    WorkflowBuilder,
};

/// Metadata key: a job's submit description file, recorded only when it
/// differs from the `<name>.submit` default.
pub const META_SUBMIT: &str = "submit";
/// Metadata key: marks a `SUBDAG EXTERNAL` node; the value is the nested
/// dag file.
pub const META_SUBDAG: &str = "subdag";
/// Metadata key: extra `JOB` statement options (`DIR …`, `DONE`),
/// space-joined in statement order.
pub const META_OPTIONS: &str = "options";

/// The DAGMan frontend.
pub struct DagmanFrontend;

/// The full format registry: DAGMan (this crate) plus the JSON and
/// edge-list frontends from `prio-ir`, in sniff order from most to least
/// specific.
pub fn registry() -> FormatRegistry {
    let mut r = FormatRegistry::new();
    r.register(Box::new(DagmanFrontend));
    r.register(Box::new(prio_ir::JsonFrontend));
    r.register(Box::new(prio_ir::EdgesFrontend));
    r
}

/// The default submit description file for a job name.
fn default_submit(name: &str) -> String {
    format!("{name}.submit")
}

/// Converts a parsed DAGMan file into the IR (the import half of the
/// frontend, exposed for callers that already hold an AST).
pub fn workflow_from_file(file: &DagmanFile) -> Result<Workflow, PrioError> {
    let mut b = WorkflowBuilder::with_capacity(FormatId::Dagman, file.statements.len(), 0);
    for s in &file.statements {
        let (name, subdag) = match s {
            Statement::Job { name, .. } => (name, false),
            Statement::Subdag { name, .. } => (name, true),
            _ => continue,
        };
        if b.get(name).is_some() {
            return Err(DagmanError::DuplicateJob {
                line: 0,
                job: name.to_string(),
            }
            .into());
        }
        let u = b.job(name);
        match s {
            Statement::Job {
                submit_file,
                options,
                ..
            } => {
                if *submit_file != default_submit(name) {
                    b.set_meta(u, META_SUBMIT, submit_file.clone());
                }
                if !options.is_empty() {
                    b.set_meta(u, META_OPTIONS, options.join(" "));
                }
            }
            Statement::Subdag { dag_file, .. } => {
                b.set_meta(u, META_SUBDAG, dag_file.clone());
            }
            _ => unreachable!("filtered to node statements above"),
        }
        let _ = subdag;
    }
    for s in &file.statements {
        match s {
            Statement::ParentChild { parents, children } => {
                for p in parents {
                    for c in children {
                        let unknown = |job: &JobName| DagmanError::UnknownJob {
                            line: 0,
                            job: job.to_string(),
                        };
                        let pu = b.get(p).ok_or_else(|| unknown(p))?;
                        let cu = b.get(c).ok_or_else(|| unknown(c))?;
                        b.arc(pu, cu)
                            .map_err(|_| DagmanError::Cyclic { job: p.to_string() })?;
                    }
                }
            }
            Statement::Vars { job, pairs } => {
                if let Some(u) = b.get(job) {
                    for (k, v) in pairs {
                        if k == JOBPRIORITY {
                            if let Ok(p) = v.parse::<i64>() {
                                b.set_priority(u, p);
                            }
                        }
                    }
                }
            }
            Statement::Priority { job, value } => {
                if let Some(u) = b.get(job) {
                    b.set_priority(u, *value);
                }
            }
            _ => {}
        }
    }
    let wf = b.build()?;
    prio_obs::counter("dagman.parse.files").add(1);
    prio_obs::counter("dagman.parse.jobs").add(wf.num_jobs() as u64);
    prio_obs::counter("dagman.parse.arcs").add(wf.num_arcs() as u64);
    Ok(wf)
}

/// Builds the canonical DAGMan AST for a workflow (the export half of the
/// frontend, exposed for callers that want the AST).
pub fn file_from_workflow(workflow: &Workflow, priorities: &Priorities) -> DagmanFile {
    let mut statements = Vec::with_capacity(workflow.num_jobs() * 2);
    let names: Vec<JobName> = workflow
        .node_ids()
        .map(|u| JobName::from(workflow.job_name(u)))
        .collect();
    for u in workflow.node_ids() {
        let name = names[u.index()].clone();
        let is_subdag = if let Some(dag_file) = workflow.meta(u, META_SUBDAG) {
            statements.push(Statement::Subdag {
                name: name.clone(),
                dag_file: dag_file.to_string(),
            });
            true
        } else {
            statements.push(Statement::Job {
                name: name.clone(),
                submit_file: workflow
                    .meta(u, META_SUBMIT)
                    .map(str::to_string)
                    .unwrap_or_else(|| default_submit(&name)),
                options: workflow
                    .meta(u, META_OPTIONS)
                    .map(|o| o.split_whitespace().map(str::to_string).collect())
                    .unwrap_or_default(),
            });
            false
        };
        if let Some(p) = priorities.get(u) {
            // The paper's Fig. 3 layout: the priority statement directly
            // follows its node. External sub-dags have no JSDF, so they
            // get a PRIORITY statement instead of the VARS macro.
            statements.push(if is_subdag {
                Statement::Priority {
                    job: name,
                    value: p,
                }
            } else {
                Statement::Vars {
                    job: name,
                    pairs: vec![(JOBPRIORITY.to_string(), p.to_string())],
                }
            });
        }
    }
    for u in workflow.node_ids() {
        let children = workflow.children(u);
        if !children.is_empty() {
            statements.push(Statement::ParentChild {
                parents: vec![names[u.index()].clone()],
                children: children.iter().map(|&c| names[c.index()].clone()).collect(),
            });
        }
    }
    DagmanFile { statements }
}

/// Whether every job name survives DAGMan's whitespace tokenization.
/// Formats like JSON can carry names no DAGMan statement can express;
/// converters should refuse those instead of writing a corrupt file.
pub fn representable(workflow: &Workflow) -> Result<(), PrioError> {
    for u in workflow.node_ids() {
        let name = workflow.job_name(u);
        if name.is_empty() || name.contains(char::is_whitespace) || name.starts_with('#') {
            return Err(PrioError::Parse(ImportError::whole_file(
                FormatId::Dagman,
                format!("job name {name:?} cannot be written as a DAGMan token"),
            )));
        }
    }
    Ok(())
}

impl Frontend for DagmanFrontend {
    fn id(&self) -> FormatId {
        FormatId::Dagman
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["dag", "dagman"]
    }

    fn sniff(&self, text: &str) -> bool {
        text.lines()
            .map(str::trim)
            .filter(|t| !t.is_empty() && !t.starts_with('#'))
            .take(50)
            .any(|t| {
                let kw = t.split_whitespace().next().unwrap_or("");
                ["JOB", "PARENT", "SUBDAG", "VARS", "PRIORITY"]
                    .iter()
                    .any(|k| kw.eq_ignore_ascii_case(k))
            })
    }

    fn import(&self, text: &str) -> Result<Workflow, PrioError> {
        workflow_from_file(&parse_dagman(text)?)
    }

    fn export(&self, workflow: &Workflow, priorities: &Priorities) -> String {
        write_dagman(&file_from_workflow(workflow, priorities))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_graph::NodeId;

    const FIG3: &str = "\
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

    #[test]
    fn imports_fig3() {
        let wf = DagmanFrontend.import(FIG3).unwrap();
        assert_eq!(wf.num_jobs(), 5);
        assert_eq!(wf.num_arcs(), 3);
        assert_eq!(wf.source(), FormatId::Dagman);
        // Default submit files are not recorded as metadata.
        assert_eq!(wf.meta(NodeId(0), META_SUBMIT), None);
        assert!(wf.priorities().is_empty());
    }

    #[test]
    fn export_import_round_trips_content() {
        let f = DagmanFrontend;
        let wf = f.import(FIG3).unwrap();
        let mut p = Priorities::none(5);
        p.set(NodeId(2), 5);
        p.set(NodeId(0), 4);
        let text = f.export(&wf, &p);
        let back = f.import(&text).unwrap();
        assert_eq!(back.dag(), wf.dag());
        assert_eq!(back.priorities().get(NodeId(2)), Some(5));
        assert_eq!(back.priorities().get(NodeId(0)), Some(4));
        assert_eq!(back.priorities().get(NodeId(1)), None);
        // Canonical: exporting the re-import is byte-identical.
        assert_eq!(f.export(&back, back.priorities()), text);
    }

    #[test]
    fn metadata_survives_round_trips() {
        let text = "\
JOB a custom.sub DIR subdir DONE
SUBDAG EXTERNAL inner inner.dag
PARENT a CHILD inner
";
        let f = DagmanFrontend;
        let wf = f.import(text).unwrap();
        assert_eq!(wf.meta(NodeId(0), META_SUBMIT), Some("custom.sub"));
        assert_eq!(wf.meta(NodeId(0), META_OPTIONS), Some("DIR subdir DONE"));
        assert_eq!(wf.meta(NodeId(1), META_SUBDAG), Some("inner.dag"));
        let out = f.export(&wf, wf.priorities());
        assert!(out.contains("JOB a custom.sub DIR subdir DONE"));
        assert!(out.contains("SUBDAG EXTERNAL inner inner.dag"));
        let back = f.import(&out).unwrap();
        assert!(back.same_content(&wf));
    }

    #[test]
    fn priorities_import_from_vars_and_priority_statements() {
        let text = "\
JOB a a.submit
VARS a jobpriority=\"7\"
SUBDAG EXTERNAL s s.dag
PRIORITY s -3
PARENT a CHILD s
";
        let wf = DagmanFrontend.import(text).unwrap();
        assert_eq!(wf.priorities().get(NodeId(0)), Some(7));
        assert_eq!(wf.priorities().get(NodeId(1)), Some(-3));
        // Exported subdag priorities use PRIORITY, jobs use VARS.
        let out = DagmanFrontend.export(&wf, wf.priorities());
        assert!(out.contains("VARS a jobpriority=\"7\""));
        assert!(out.contains("PRIORITY s -3"));
        let back = DagmanFrontend.import(&out).unwrap();
        assert!(back.same_content(&wf));
    }

    #[test]
    fn a_job_named_child_round_trips() {
        // The case-fold hazard of the satellite fix: `child` (any case)
        // as a job name parses from the first-token position, and the
        // exporter only ever puts it there.
        let text = "\
JOB child child.submit
JOB CHILD other.submit
JOB x x.submit
PARENT child CHILD x
PARENT CHILD CHILD x
";
        let f = DagmanFrontend;
        let wf = f.import(text).unwrap();
        assert_eq!(wf.num_jobs(), 3);
        assert_eq!(wf.num_arcs(), 2);
        let out = f.export(&wf, wf.priorities());
        let back = f.import(&out).unwrap();
        assert!(back.same_content(&wf), "export:\n{out}");
    }

    #[test]
    fn import_errors_carry_dagman_provenance() {
        for text in [
            "JOB onlyname",
            "JOB a a.sub\nJOB a b.sub",
            "JOB a a.sub\nPARENT a CHILD ghost",
            "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nPARENT b CHILD a",
        ] {
            let e = DagmanFrontend.import(text).unwrap_err();
            assert!(
                e.to_string().starts_with("parse: dagman:"),
                "bad provenance for {text:?}: {e}"
            );
        }
    }

    #[test]
    fn representable_rejects_untokenizable_names() {
        let mut b = WorkflowBuilder::new(FormatId::Json);
        b.job("fine");
        let wf = b.build().unwrap();
        assert!(representable(&wf).is_ok());
        let mut b = WorkflowBuilder::new(FormatId::Json);
        b.job("has space");
        let wf = b.build().unwrap();
        assert!(representable(&wf).is_err());
    }

    #[test]
    fn sniff_recognizes_dagman_only() {
        assert!(DagmanFrontend.sniff(FIG3));
        assert!(DagmanFrontend.sniff("# header\n\njob x x.sub\n"));
        assert!(!DagmanFrontend.sniff("{\"jobs\": []}"));
        assert!(!DagmanFrontend.sniff("a\tb\n"));
        assert!(!DagmanFrontend.sniff(""));
    }

    #[test]
    fn registry_detects_all_three_formats() {
        let r = registry();
        let cases = [
            (FIG3, FormatId::Dagman),
            (
                "{\"format\": \"prio-workflow-v1\", \"jobs\": []}",
                FormatId::Json,
            ),
            ("a\tb\n", FormatId::Edges),
        ];
        for (text, want) in cases {
            assert_eq!(r.detect(None, text).map(|f| f.id()), Some(want), "{text:?}");
        }
        assert_eq!(
            r.detect(Some("x.dag"), "").map(|f| f.id()),
            Some(FormatId::Dagman)
        );
        // Every frontend in the registry prioritizes the same Fig. 3
        // content to the same workflow content after conversion.
        let wf = r.get(FormatId::Dagman).unwrap().import(FIG3).unwrap();
        for f in r.frontends() {
            if f.id() == FormatId::Dagman {
                continue;
            }
            let text = f.export(&wf, wf.priorities());
            let back = f.import(&text).unwrap();
            assert!(back.same_content(&wf), "{} changed content", f.id());
        }
    }
}
