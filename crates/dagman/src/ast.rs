//! The DAGMan input-file AST.
//!
//! A DAGMan input file is a sequence of line statements. The subset the
//! `prio` tool needs semantically is `JOB` (name + submit description file)
//! and `PARENT … CHILD …` (dependencies); `VARS` is read and written for
//! the `jobpriority` macro; everything else (comments, `RETRY`, `SCRIPT`,
//! `CONFIG`, …) is preserved verbatim so instrumentation is a minimal diff.

use crate::error::DagmanError;
use prio_graph::{Dag, DagBuilder, NodeId};
use std::collections::HashMap;
use std::fmt;

/// An interned job name.
///
/// Job names repeat across `JOB`, `PARENT … CHILD`, `VARS` and `PRIORITY`
/// statements — on large .dag files almost every token is a name already
/// seen — so statements share one reference-counted allocation per
/// distinct name instead of a fresh `String` per token. The type (and the
/// interner producing it) lives in `prio-ir` so every frontend shares it.
pub type JobName = prio_ir::JobName;

/// One statement (line) of a DAGMan input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A blank line.
    Blank,
    /// A comment line (`# …`), stored with its text verbatim.
    Comment(String),
    /// `JOB <name> <submit-file> [options…]` — declares a job and the JSDF
    /// describing it.
    Job {
        /// The job name.
        name: JobName,
        /// Path of the job-submit description file.
        submit_file: String,
        /// Trailing options (e.g. `DIR x`, `DONE`), verbatim tokens.
        options: Vec<String>,
    },
    /// `PARENT <p…> CHILD <c…>` — every parent precedes every child.
    ParentChild {
        /// Parent job names.
        parents: Vec<JobName>,
        /// Child job names.
        children: Vec<JobName>,
    },
    /// `VARS <job> key="value" …` — macros passed to the job's JSDF.
    Vars {
        /// The job the macros apply to.
        job: JobName,
        /// `(key, value)` pairs in file order.
        pairs: Vec<(String, String)>,
    },
    /// `SUBDAG EXTERNAL <name> <dag-file>` — a nested dag run as a single
    /// node; scheduled like a job (DAGMan treats it as one).
    Subdag {
        /// The node name.
        name: JobName,
        /// Path of the nested DAGMan input file.
        dag_file: String,
    },
    /// `PRIORITY <job> <value>` — DAGMan's direct node-priority statement
    /// (an alternative to the `VARS`+JSDF mechanism).
    Priority {
        /// The job.
        job: JobName,
        /// The priority value (larger = earlier).
        value: i64,
    },
    /// Any other statement (RETRY, SCRIPT, CONFIG, …), preserved verbatim.
    Other(String),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Blank => Ok(()),
            Statement::Comment(text) => write!(f, "{text}"),
            Statement::Job {
                name,
                submit_file,
                options,
            } => {
                write!(f, "JOB {name} {submit_file}")?;
                for o in options {
                    write!(f, " {o}")?;
                }
                Ok(())
            }
            Statement::ParentChild { parents, children } => {
                write!(
                    f,
                    "PARENT {} CHILD {}",
                    parents.join(" "),
                    children.join(" ")
                )
            }
            Statement::Vars { job, pairs } => {
                write!(f, "VARS {job}")?;
                for (k, v) in pairs {
                    write!(f, " {k}=\"{v}\"")?;
                }
                Ok(())
            }
            Statement::Subdag { name, dag_file } => {
                write!(f, "SUBDAG EXTERNAL {name} {dag_file}")
            }
            Statement::Priority { job, value } => write!(f, "PRIORITY {job} {value}"),
            Statement::Other(text) => write!(f, "{text}"),
        }
    }
}

/// A parsed DAGMan input file: an ordered list of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DagmanFile {
    /// The statements, in file order.
    pub statements: Vec<Statement>,
}

impl DagmanFile {
    /// The declared node names (jobs and external sub-dags), in
    /// declaration order.
    pub fn job_names(&self) -> Vec<&str> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::Job { name, .. } => Some(&**name),
                Statement::Subdag { name, .. } => Some(&**name),
                _ => None,
            })
            .collect()
    }

    /// Builds a DAGMan file from a dag: one `JOB` per node (submit file
    /// `<label>.submit` unless a `submit_file_for` override is given) and
    /// one `PARENT … CHILD` per node with children.
    pub fn from_dag(dag: &prio_graph::Dag) -> DagmanFile {
        Self::from_dag_with(dag, |label| format!("{label}.submit"))
    }

    /// [`DagmanFile::from_dag`] with a caller-chosen submit-file name per
    /// job label.
    pub fn from_dag_with(
        dag: &prio_graph::Dag,
        submit_file_for: impl Fn(&str) -> String,
    ) -> DagmanFile {
        let mut statements = Vec::with_capacity(dag.num_nodes() * 2);
        // One interned name per node, shared between the JOB statement and
        // every PARENT/CHILD occurrence.
        let names: Vec<JobName> = dag
            .node_ids()
            .map(|u| JobName::from(dag.label(u)))
            .collect();
        for u in dag.node_ids() {
            statements.push(Statement::Job {
                name: names[u.index()].clone(),
                submit_file: submit_file_for(dag.label(u)),
                options: vec![],
            });
        }
        for u in dag.node_ids() {
            let children = dag.children(u);
            if !children.is_empty() {
                statements.push(Statement::ParentChild {
                    parents: vec![names[u.index()].clone()],
                    children: children.iter().map(|&c| names[c.index()].clone()).collect(),
                });
            }
        }
        DagmanFile { statements }
    }

    /// The submit file declared for `job`, if any.
    pub fn submit_file(&self, job: &str) -> Option<&str> {
        self.statements.iter().find_map(|s| match s {
            Statement::Job {
                name, submit_file, ..
            } if &**name == job => Some(submit_file.as_str()),
            _ => None,
        })
    }

    /// Extracts the job-dependency DAG. Node indices follow declaration
    /// order, and node labels are the job names.
    ///
    /// Fails on duplicate job declarations, dependencies naming undeclared
    /// jobs, or cyclic dependencies.
    pub fn to_dag(&self) -> Result<Dag, DagmanError> {
        let mut b = DagBuilder::new();
        let mut ids: HashMap<&str, NodeId> = HashMap::new();
        for s in &self.statements {
            let name = match s {
                Statement::Job { name, .. } => name,
                Statement::Subdag { name, .. } => name,
                _ => continue,
            };
            if ids.contains_key(&**name) {
                return Err(DagmanError::DuplicateJob {
                    line: 0,
                    job: name.to_string(),
                });
            }
            ids.insert(&**name, b.add_node(&**name));
        }
        for s in &self.statements {
            if let Statement::ParentChild { parents, children } = s {
                for p in parents {
                    for c in children {
                        let (&pu, &cu) = match (ids.get(&**p), ids.get(&**c)) {
                            (Some(pu), Some(cu)) => (pu, cu),
                            (None, _) => {
                                return Err(DagmanError::UnknownJob {
                                    line: 0,
                                    job: p.to_string(),
                                })
                            }
                            (_, None) => {
                                return Err(DagmanError::UnknownJob {
                                    line: 0,
                                    job: c.to_string(),
                                })
                            }
                        };
                        b.add_arc(pu, cu)
                            .map_err(|_| DagmanError::Cyclic { job: p.to_string() })?;
                    }
                }
            }
        }
        b.build().map_err(|e| match e {
            prio_graph::GraphError::Cycle { on_cycle } => DagmanError::Cyclic {
                job: self
                    .job_names()
                    .get(on_cycle as usize)
                    .unwrap_or(&"?")
                    .to_string(),
            },
            other => DagmanError::Malformed {
                line: 0,
                message: other.to_string(),
            },
        })
    }

    /// Looks up the value of a `VARS` macro for a job, if defined.
    pub fn vars_value(&self, job: &str, key: &str) -> Option<&str> {
        self.statements.iter().rev().find_map(|s| match s {
            Statement::Vars { job: j, pairs } if &**j == job => pairs
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_file() -> DagmanFile {
        DagmanFile {
            statements: vec![
                Statement::Comment("# Fig. 3 example".into()),
                Statement::Job {
                    name: "a".into(),
                    submit_file: "a.submit".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "b".into(),
                    submit_file: "b.submit".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "c".into(),
                    submit_file: "c.submit".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "d".into(),
                    submit_file: "d.submit".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "e".into(),
                    submit_file: "e.submit".into(),
                    options: vec![],
                },
                Statement::ParentChild {
                    parents: vec!["a".into()],
                    children: vec!["b".into()],
                },
                Statement::ParentChild {
                    parents: vec!["c".into()],
                    children: vec!["d".into(), "e".into()],
                },
            ],
        }
    }

    #[test]
    fn job_names_in_order() {
        assert_eq!(fig3_file().job_names(), vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn to_dag_matches_dependencies() {
        let dag = fig3_file().to_dag().unwrap();
        assert_eq!(dag.num_nodes(), 5);
        assert_eq!(dag.num_arcs(), 3);
        let c = dag.find("c").unwrap();
        assert_eq!(dag.out_degree(c), 2);
        assert_eq!(dag.label(NodeId(0)), "a");
    }

    #[test]
    fn multi_parent_child_expands_to_product() {
        let f = DagmanFile {
            statements: vec![
                Statement::Job {
                    name: "p1".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "p2".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "c1".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "c2".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::ParentChild {
                    parents: vec!["p1".into(), "p2".into()],
                    children: vec!["c1".into(), "c2".into()],
                },
            ],
        };
        let dag = f.to_dag().unwrap();
        assert_eq!(dag.num_arcs(), 4);
    }

    #[test]
    fn unknown_job_rejected() {
        let f = DagmanFile {
            statements: vec![
                Statement::Job {
                    name: "a".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::ParentChild {
                    parents: vec!["a".into()],
                    children: vec!["ghost".into()],
                },
            ],
        };
        assert!(matches!(f.to_dag(), Err(DagmanError::UnknownJob { .. })));
    }

    #[test]
    fn duplicate_job_rejected() {
        let f = DagmanFile {
            statements: vec![
                Statement::Job {
                    name: "a".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "a".into(),
                    submit_file: "y".into(),
                    options: vec![],
                },
            ],
        };
        assert!(matches!(f.to_dag(), Err(DagmanError::DuplicateJob { .. })));
    }

    #[test]
    fn cycle_rejected() {
        let f = DagmanFile {
            statements: vec![
                Statement::Job {
                    name: "a".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Job {
                    name: "b".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::ParentChild {
                    parents: vec!["a".into()],
                    children: vec!["b".into()],
                },
                Statement::ParentChild {
                    parents: vec!["b".into()],
                    children: vec!["a".into()],
                },
            ],
        };
        assert!(matches!(f.to_dag(), Err(DagmanError::Cyclic { .. })));
    }

    #[test]
    fn vars_lookup_takes_last_definition() {
        let f = DagmanFile {
            statements: vec![
                Statement::Job {
                    name: "a".into(),
                    submit_file: "x".into(),
                    options: vec![],
                },
                Statement::Vars {
                    job: "a".into(),
                    pairs: vec![("jobpriority".into(), "1".into())],
                },
                Statement::Vars {
                    job: "a".into(),
                    pairs: vec![("jobpriority".into(), "9".into())],
                },
            ],
        };
        assert_eq!(f.vars_value("a", "jobpriority"), Some("9"));
        assert_eq!(f.vars_value("a", "other"), None);
        assert_eq!(f.vars_value("b", "jobpriority"), None);
    }

    #[test]
    fn submit_file_lookup() {
        assert_eq!(fig3_file().submit_file("c"), Some("c.submit"));
        assert_eq!(fig3_file().submit_file("zz"), None);
    }
}
