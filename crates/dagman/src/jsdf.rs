//! Job-submit description files (JSDFs).
//!
//! A Condor submit description file is a sequence of `key = value`
//! assignments followed by a `queue` statement. The `prio` tool adds the
//! single line `priority = $(jobpriority)` — using the macro indirection so
//! one JSDF can serve jobs of several DAGMan files with different
//! priorities (§3.2).

use std::fmt::Write as _;

/// A parsed JSDF: raw lines plus an index of assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Jsdf {
    lines: Vec<String>,
}

impl Jsdf {
    /// Parses a JSDF (line-preserving; Condor submit syntax is forgiving,
    /// so no line is rejected).
    pub fn parse(text: &str) -> Jsdf {
        Jsdf {
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    /// Serializes the file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// The value of the last assignment to `key` (case-insensitive), if
    /// any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.lines.iter().rev().find_map(|l| {
            let (k, v) = l.split_once('=')?;
            if k.trim().eq_ignore_ascii_case(key) {
                Some(v.trim())
            } else {
                None
            }
        })
    }

    /// Whether a line assigns `key` (case-insensitive).
    pub fn has(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Sets `key = value`: replaces the last existing assignment in place,
    /// or inserts a new line before the first `queue` statement (or at the
    /// end if there is none).
    pub fn set(&mut self, key: &str, value: &str) {
        let assignment = format!("{key} = {value}");
        // Replace in place if present.
        if let Some(i) = self.lines.iter().rposition(|l| {
            l.split_once('=')
                .map(|(k, _)| k.trim().eq_ignore_ascii_case(key))
                .unwrap_or(false)
        }) {
            self.lines[i] = assignment;
            return;
        }
        let queue_pos = self.lines.iter().position(|l| {
            let t = l.trim();
            t.eq_ignore_ascii_case("queue") || t.to_ascii_lowercase().starts_with("queue ")
        });
        match queue_pos {
            Some(i) => self.lines.insert(i, assignment),
            None => self.lines.push(assignment),
        }
    }

    /// The instrumentation the `prio` tool performs: assign the
    /// `jobpriority` macro to Condor's `priority` attribute.
    pub fn instrument_priority(&mut self) {
        self.set("priority", "$(jobpriority)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
universe = vanilla
executable = analyze
arguments = -x 1
queue
";

    #[test]
    fn parse_and_get() {
        let j = Jsdf::parse(SAMPLE);
        assert_eq!(j.get("universe"), Some("vanilla"));
        assert_eq!(j.get("Executable"), Some("analyze"));
        assert_eq!(j.get("missing"), None);
        assert!(j.has("arguments"));
    }

    #[test]
    fn instrument_inserts_before_queue() {
        let mut j = Jsdf::parse(SAMPLE);
        j.instrument_priority();
        let text = j.to_text();
        let prio_line = text
            .lines()
            .position(|l| l == "priority = $(jobpriority)")
            .unwrap();
        let queue_line = text.lines().position(|l| l == "queue").unwrap();
        assert!(prio_line < queue_line);
        assert_eq!(j.get("priority"), Some("$(jobpriority)"));
    }

    #[test]
    fn instrument_replaces_existing_priority() {
        let mut j = Jsdf::parse("priority = 0\nqueue\n");
        j.instrument_priority();
        assert_eq!(j.to_text(), "priority = $(jobpriority)\nqueue\n");
    }

    #[test]
    fn instrument_is_idempotent() {
        let mut j = Jsdf::parse(SAMPLE);
        j.instrument_priority();
        let once = j.to_text();
        j.instrument_priority();
        assert_eq!(j.to_text(), once);
    }

    #[test]
    fn set_appends_when_no_queue() {
        let mut j = Jsdf::parse("universe = vanilla\n");
        j.set("priority", "3");
        assert!(j.to_text().ends_with("priority = 3\n"));
    }

    #[test]
    fn queue_with_count_recognized() {
        let mut j = Jsdf::parse("executable = x\nQueue 5\n");
        j.instrument_priority();
        let text = j.to_text();
        assert!(text.find("priority").unwrap() < text.find("Queue 5").unwrap());
    }

    #[test]
    fn roundtrip() {
        let j = Jsdf::parse(SAMPLE);
        assert_eq!(j.to_text(), SAMPLE);
    }
}
