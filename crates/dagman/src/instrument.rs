//! Instrumenting a DAGMan file with job priorities (§3.2, Fig. 3).
//!
//! Given a priority per job (larger = assigned to a worker earlier), the
//! tool defines the `jobpriority` macro for each job using a `VARS`
//! statement placed directly after the job's `JOB` statement, exactly like
//! the bold lines of Fig. 3. Each job's JSDF is separately instrumented
//! with `priority = $(jobpriority)` (see [`crate::jsdf`]).

use crate::ast::{DagmanFile, JobName, Statement};
use crate::error::DagmanError;
use std::collections::BTreeMap;

/// The name of the macro the tool defines.
pub const JOBPRIORITY: &str = "jobpriority";

/// Converts a schedule position map into Condor priorities: the job at
/// schedule position 0 (executed first) of an `n`-job dag gets priority
/// `n`, the last gets 1.
///
/// `order` lists job names in schedule order.
pub fn priorities_by_job<'a>(order: impl IntoIterator<Item = &'a str>) -> BTreeMap<String, u32> {
    let names: Vec<&str> = order.into_iter().collect();
    let n = names.len() as u32;
    names
        .into_iter()
        .enumerate()
        .map(|(i, name)| (name.to_string(), n - i as u32))
        .collect()
}

/// How priorities are written back into the DAGMan file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrumentMode {
    /// The paper's mechanism: define the `jobpriority` macro per job via
    /// `VARS` and let the JSDF assign `priority = $(jobpriority)`.
    /// External sub-dag nodes (which have no JSDF) get a `PRIORITY`
    /// statement instead.
    #[default]
    VarsMacro,
    /// Direct `PRIORITY <node> <value>` statements (DAGMan's node-priority
    /// mechanism, usable without touching JSDFs).
    PriorityStatement,
}

/// Instruments `file` in place with the paper's `VARS` mechanism
/// (see [`instrument_dagman_with`]).
pub fn instrument_dagman(
    file: &mut DagmanFile,
    priorities: &BTreeMap<String, u32>,
) -> Result<(), DagmanError> {
    instrument_dagman_with(file, priorities, InstrumentMode::VarsMacro)
}

/// Instruments `file` in place: after each `JOB`/`SUBDAG` statement,
/// inserts (or updates) the statement carrying the node's priority.
///
/// Nodes missing from `priorities` are an error; extra entries are
/// ignored. Existing definitions anywhere in the file are updated in
/// place instead of duplicated, making instrumentation idempotent.
pub fn instrument_dagman_with(
    file: &mut DagmanFile,
    priorities: &BTreeMap<String, u32>,
    mode: InstrumentMode,
) -> Result<(), DagmanError> {
    let _span = prio_obs::span(prio_obs::stage::WRITE);
    // Verify coverage first.
    for name in file.job_names() {
        if !priorities.contains_key(name) {
            return Err(DagmanError::UnknownJob {
                line: 0,
                job: name.to_string(),
            });
        }
    }
    // Update existing definitions in place. Cloning an interned JobName is
    // a refcount bump, so the updated-set costs no string allocations.
    let mut updated: std::collections::HashSet<JobName> = std::collections::HashSet::new();
    for s in file.statements.iter_mut() {
        match s {
            Statement::Vars { job, pairs } if mode == InstrumentMode::VarsMacro => {
                if let Some(p) = priorities.get(&**job) {
                    for (k, v) in pairs.iter_mut() {
                        if k == JOBPRIORITY {
                            *v = p.to_string();
                            updated.insert(job.clone());
                        }
                    }
                }
            }
            Statement::Priority { job, value } => {
                if let Some(&p) = priorities.get(&**job) {
                    *value = p as i64;
                    updated.insert(job.clone());
                }
            }
            _ => {}
        }
    }
    prio_obs::counter("dagman.instrument.statements_updated").add(updated.len() as u64);
    // Insert after each node statement lacking one.
    let mut inserted = 0u64;
    let mut i = 0;
    while i < file.statements.len() {
        let node = match &file.statements[i] {
            Statement::Job { name, .. } => Some((name.clone(), false)),
            Statement::Subdag { name, .. } => Some((name.clone(), true)),
            _ => None,
        };
        if let Some((name, is_subdag)) = node {
            if !updated.contains(&name) {
                let p = priorities[&*name];
                let stmt = if mode == InstrumentMode::PriorityStatement || is_subdag {
                    Statement::Priority {
                        job: name,
                        value: p as i64,
                    }
                } else {
                    Statement::Vars {
                        job: name,
                        pairs: vec![(JOBPRIORITY.to_string(), p.to_string())],
                    }
                };
                file.statements.insert(i + 1, stmt);
                inserted += 1;
                i += 1; // skip the inserted statement
            }
        }
        i += 1;
    }
    prio_obs::counter("dagman.instrument.statements_inserted").add(inserted);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dagman;
    use crate::write::write_dagman;

    const FIG3: &str = "\
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

    fn fig3_priorities() -> BTreeMap<String, u32> {
        // PRIO schedule: c, a, b, d, e.
        priorities_by_job(["c", "a", "b", "d", "e"])
    }

    #[test]
    fn priorities_by_job_matches_fig3() {
        let p = fig3_priorities();
        assert_eq!(p["c"], 5);
        assert_eq!(p["a"], 4);
        assert_eq!(p["b"], 3);
        assert_eq!(p["d"], 2);
        assert_eq!(p["e"], 1);
    }

    #[test]
    fn instrumentation_inserts_vars_after_each_job() {
        let mut f = parse_dagman(FIG3).unwrap();
        instrument_dagman(&mut f, &fig3_priorities()).unwrap();
        let text = write_dagman(&f);
        let expected = "\
JOB a a.submit
VARS a jobpriority=\"4\"
JOB b b.submit
VARS b jobpriority=\"3\"
JOB c c.submit
VARS c jobpriority=\"5\"
JOB d d.submit
VARS d jobpriority=\"2\"
JOB e e.submit
VARS e jobpriority=\"1\"
PARENT a CHILD b
PARENT c CHILD d e
";
        assert_eq!(text, expected);
    }

    #[test]
    fn instrumentation_is_idempotent() {
        let mut f = parse_dagman(FIG3).unwrap();
        instrument_dagman(&mut f, &fig3_priorities()).unwrap();
        let once = write_dagman(&f);
        instrument_dagman(&mut f, &fig3_priorities()).unwrap();
        assert_eq!(write_dagman(&f), once);
    }

    #[test]
    fn reinstrumentation_updates_values() {
        let mut f = parse_dagman(FIG3).unwrap();
        instrument_dagman(&mut f, &fig3_priorities()).unwrap();
        // New schedule: a first.
        let new = priorities_by_job(["a", "b", "c", "d", "e"]);
        instrument_dagman(&mut f, &new).unwrap();
        assert_eq!(f.vars_value("a", JOBPRIORITY), Some("5"));
        assert_eq!(f.vars_value("c", JOBPRIORITY), Some("3"));
    }

    #[test]
    fn missing_priority_is_an_error() {
        let mut f = parse_dagman(FIG3).unwrap();
        let partial = priorities_by_job(["a", "b"]);
        assert!(matches!(
            instrument_dagman(&mut f, &partial),
            Err(DagmanError::UnknownJob { .. })
        ));
    }

    #[test]
    fn priority_statement_mode() {
        let mut f = parse_dagman("JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n").unwrap();
        let p = priorities_by_job(["a", "b"]);
        instrument_dagman_with(&mut f, &p, InstrumentMode::PriorityStatement).unwrap();
        let text = write_dagman(&f);
        assert!(text.contains("PRIORITY a 2"));
        assert!(text.contains("PRIORITY b 1"));
        assert!(!text.contains("VARS"));
        // Idempotent and updatable.
        instrument_dagman_with(
            &mut f,
            &priorities_by_job(["b", "a"]),
            InstrumentMode::PriorityStatement,
        )
        .unwrap();
        let text = write_dagman(&f);
        assert!(text.contains("PRIORITY a 1"));
        assert!(text.contains("PRIORITY b 2"));
        assert_eq!(text.matches("PRIORITY").count(), 2);
    }

    #[test]
    fn subdag_nodes_get_priority_statements_even_in_vars_mode() {
        let mut f =
            parse_dagman("JOB a a.sub\nSUBDAG EXTERNAL inner inner.dag\nPARENT a CHILD inner\n")
                .unwrap();
        let p = priorities_by_job(["a", "inner"]);
        instrument_dagman(&mut f, &p).unwrap();
        let text = write_dagman(&f);
        assert!(text.contains("VARS a jobpriority=\"2\""));
        assert!(text.contains("PRIORITY inner 1"));
    }

    #[test]
    fn preserves_unrelated_statements() {
        let text = "# hdr\nJOB a a.sub\nRETRY a 2\n";
        let mut f = parse_dagman(text).unwrap();
        instrument_dagman(&mut f, &priorities_by_job(["a"])).unwrap();
        let out = write_dagman(&f);
        assert!(out.contains("# hdr"));
        assert!(out.contains("RETRY a 2"));
        assert!(out.contains("VARS a jobpriority=\"1\""));
    }
}
