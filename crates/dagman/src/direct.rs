//! The direct DAGMan-text → [`Dag`] path: parse without building an AST.
//!
//! [`crate::parse::parse_dagman`] + [`crate::ast::DagmanFile::to_dag`]
//! materialize a [`Statement`](crate::ast::Statement) per input line —
//! submit-file strings, option vectors, interned name handles — only for
//! `to_dag` to immediately reduce them to declarations and arcs. At 10⁷–10⁸
//! jobs that intermediate AST costs several times the memory of the dag
//! itself. [`parse_dagman_to_dag`] instead scans each line *leanly*:
//! name tokens stay `&str` borrows into the input text until the single
//! final copy into the dag's label table, statement validation runs
//! allocation-free, and the per-chunk scans run on scoped worker threads.
//!
//! **Error parity is a hard contract**: for every input and thread count,
//! this path returns exactly the error (variant, line, job, message) that
//! `parse_dagman(text).and_then(|f| f.to_dag())` would — property-tested
//! in `tests/` against the AST path. The phases mirror the AST path's
//! precedence: all lines are scanned for `Malformed` first (lowest line
//! wins), then duplicate declarations in declaration order, then unknown
//! jobs and self-loops in statement × parent × child product order, then
//! cycles from the final acyclicity check.

use crate::error::DagmanError;
use crate::parse::{find_after_token, malformed, parse_vars_pairs_into, MIN_PARALLEL_PARSE_BYTES};
use crate::scan;
use prio_graph::{Dag, GraphError, Label, NameHashBuild, NodeId};
use std::collections::HashMap;

/// Borrowed per-chunk scan output: declaration and arc-statement name
/// tokens, pointing into the input text (nothing is copied here).
#[derive(Debug, Default)]
struct ChunkEvents<'a> {
    /// `JOB`/`SUBDAG EXTERNAL` names, in declaration order.
    decls: Vec<&'a str>,
    /// Flattened `PARENT … CHILD …` name lists, parents then children,
    /// statement by statement.
    pc_names: Vec<&'a str>,
    /// Per `PARENT … CHILD` statement: (parent count, child count) into
    /// `pc_names`.
    pc_stmts: Vec<(u32, u32)>,
}

/// Parses DAGMan text straight into the dependency [`Dag`], skipping the
/// AST; sharded across up to `threads` scoped worker threads (`0`/`1` =
/// serial). Equivalent to
/// `parse_dagman(text).and_then(|f| f.to_dag())` — same dag, same errors —
/// at a fraction of the memory and time. Labels are in declaration order,
/// exactly as the AST path's [`crate::DagmanFile::job_names`] would list
/// them.
pub fn parse_dagman_to_dag(text: &str, threads: usize) -> Result<Dag, DagmanError> {
    let _span = prio_obs::span(prio_obs::stage::PARSE);
    prio_obs::counter("dagman.parse.direct_to_dag").add(1);
    let t = if text.len() < MIN_PARALLEL_PARSE_BYTES {
        1
    } else {
        threads.max(1)
    };
    let chunks = scan::chunk_at_lines(text, t);

    // Phase 1: lean-scan every line. Workers stop at their first malformed
    // line; the lowest chunk's error has the lowest line number, which is
    // exactly the serial parser's first error.
    let events: Vec<ChunkEvents<'_>> = if chunks.len() <= 1 {
        match chunks.first() {
            Some((range, start_line)) => vec![scan_chunk(&text[range.clone()], *start_line)?],
            None => Vec::new(),
        }
    } else {
        let mut results: Vec<Option<Result<ChunkEvents<'_>, DagmanError>>> =
            (0..chunks.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut rest = results.as_mut_slice();
            for (range, start_line) in &chunks {
                let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
                rest = tail;
                let chunk = &text[range.clone()];
                let start_line = *start_line;
                scope.spawn(move || {
                    *slot = Some(scan_chunk(chunk, start_line));
                });
            }
        });
        let mut events = Vec::with_capacity(results.len());
        for r in results {
            events.push(r.expect("every chunk scanned")?);
        }
        events
    };

    // Phase 2 (serial): the declaration table. First duplicate in
    // declaration order wins, matching the AST path's decl pass. The one
    // copy of each name happens here, into the dag's own label table.
    let num_decls: usize = events.iter().map(|e| e.decls.len()).sum();
    let mut ids: HashMap<&str, NodeId, NameHashBuild> =
        HashMap::with_capacity_and_hasher(num_decls, NameHashBuild);
    let mut labels: Vec<Label> = Vec::with_capacity(num_decls);
    for ev in &events {
        for &name in &ev.decls {
            if ids.contains_key(name) {
                return Err(DagmanError::DuplicateJob {
                    line: 0,
                    job: name.to_string(),
                });
            }
            ids.insert(name, NodeId(labels.len() as u32));
            labels.push(Label::from(name));
        }
    }

    // Phase 3: resolve arc statements, per chunk on worker threads. Name
    // lookups and self-loop checks run in statement × parent × child
    // product order within each chunk, and chunk order is statement order,
    // so the first error across chunks is the AST path's first error.
    let arcs: Vec<(NodeId, NodeId)> = if events.len() <= 1 {
        match events.into_iter().next() {
            Some(ev) => resolve_arcs(&ev, &ids)?,
            None => Vec::new(),
        }
    } else {
        type ChunkArcs = Result<Vec<(NodeId, NodeId)>, DagmanError>;
        let mut results: Vec<Option<ChunkArcs>> = (0..events.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let ids = &ids;
            let mut rest = results.as_mut_slice();
            for ev in &events {
                let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
                rest = tail;
                scope.spawn(move || {
                    *slot = Some(resolve_arcs(ev, ids));
                });
            }
        });
        let mut arcs = Vec::new();
        for r in results {
            arcs.extend(r.expect("every chunk resolved")?);
        }
        arcs
    };
    drop(ids);

    // Phase 4: assemble the CSR dag (sort, dedup, parallel build, Kahn
    // acyclicity check), mapping graph errors exactly as the AST path
    // does. The labels move into the dag, so the (terminal, rare) cycle
    // error re-derives the witness job's name with one serial re-scan of
    // the declarations rather than keeping a full label copy around.
    match Dag::assemble(labels, arcs, threads) {
        Ok(dag) => Ok(dag),
        Err(GraphError::Cycle { on_cycle }) => Err(DagmanError::Cyclic {
            job: nth_decl(text, on_cycle as usize).unwrap_or_else(|| "?".to_string()),
        }),
        Err(other) => Err(DagmanError::Malformed {
            line: 0,
            message: other.to_string(),
        }),
    }
}

/// The `k`-th (0-based) `JOB`/`SUBDAG EXTERNAL` declaration name of
/// already-validated input — node ids are declaration indices, so this is
/// the AST path's `job_names()[k]`.
fn nth_decl(text: &str, k: usize) -> Option<String> {
    let ev = scan_chunk(text, 1).ok()?;
    ev.decls.get(k).map(|s| s.to_string())
}

/// Resolves one chunk's `PARENT … CHILD` statements against the
/// declaration table, in product order, with the AST path's error
/// precedence (unknown parent, then unknown child, then self-loop).
fn resolve_arcs(
    ev: &ChunkEvents<'_>,
    ids: &HashMap<&str, NodeId, NameHashBuild>,
) -> Result<Vec<(NodeId, NodeId)>, DagmanError> {
    let mut arcs = Vec::with_capacity(ev.pc_names.len());
    let mut cur = 0usize;
    for &(np, nc) in &ev.pc_stmts {
        let parents = &ev.pc_names[cur..cur + np as usize];
        cur += np as usize;
        let children = &ev.pc_names[cur..cur + nc as usize];
        cur += nc as usize;
        for &p in parents {
            for &c in children {
                let (pu, cu) = match (ids.get(p), ids.get(c)) {
                    (Some(&pu), Some(&cu)) => (pu, cu),
                    (None, _) => {
                        return Err(DagmanError::UnknownJob {
                            line: 0,
                            job: p.to_string(),
                        })
                    }
                    (_, None) => {
                        return Err(DagmanError::UnknownJob {
                            line: 0,
                            job: c.to_string(),
                        })
                    }
                };
                if pu == cu {
                    // The AST path's `add_arc` rejects self-loops here.
                    return Err(DagmanError::Cyclic { job: p.to_string() });
                }
                arcs.push((pu, cu));
            }
        }
    }
    Ok(arcs)
}

/// Lean version of [`crate::parse`]'s per-line parser: identical keyword
/// dispatch and validation (the two must stay in lockstep — the error-
/// parity property tests enforce it), but name tokens are borrowed and
/// nothing else of the statement is kept.
fn scan_chunk(chunk: &str, start_line: usize) -> Result<ChunkEvents<'_>, DagmanError> {
    let mut ev = ChunkEvents::default();
    for (i, raw) in scan::lines(chunk).enumerate() {
        scan_line(raw, start_line + i, &mut ev)?;
    }
    Ok(ev)
}

fn scan_line<'a>(raw: &'a str, line: usize, ev: &mut ChunkEvents<'a>) -> Result<(), DagmanError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    let mut tokens = trimmed.split_whitespace();
    let keyword = tokens.next().expect("non-empty line has a first token");
    let mut kwbuf = [0u8; 8];
    let keyword = if keyword.len() <= kwbuf.len() {
        let buf = &mut kwbuf[..keyword.len()];
        buf.copy_from_slice(keyword.as_bytes());
        buf.make_ascii_uppercase();
        std::str::from_utf8(buf).unwrap_or("")
    } else {
        "" // longer than any keyword: passes through as Other
    };
    match keyword {
        "JOB" => {
            let name = tokens
                .next()
                .ok_or_else(|| malformed(line, "JOB requires a name"))?;
            tokens
                .next()
                .ok_or_else(|| malformed(line, "JOB requires a submit description file"))?;
            ev.decls.push(name);
        }
        "PARENT" => {
            let stmt_start = ev.pc_names.len();
            let mut num_parents = 0u32;
            let mut num_children = 0u32;
            let mut in_children = false;
            for t in tokens {
                if !in_children && num_parents > 0 && t.eq_ignore_ascii_case("CHILD") {
                    in_children = true;
                } else if in_children {
                    ev.pc_names.push(t);
                    num_children += 1;
                } else {
                    ev.pc_names.push(t);
                    num_parents += 1;
                }
            }
            if num_parents == 0 || num_children == 0 {
                ev.pc_names.truncate(stmt_start);
                return Err(malformed(line, "PARENT … CHILD … requires both lists"));
            }
            ev.pc_stmts.push((num_parents, num_children));
        }
        "VARS" => {
            tokens
                .next()
                .ok_or_else(|| malformed(line, "VARS requires a job name"))?;
            let rest_start = find_after_token(trimmed, 2);
            let count = parse_vars_pairs_into(&trimmed[rest_start..], line, None)?;
            if count == 0 {
                return Err(malformed(line, "VARS requires at least one key=\"value\""));
            }
        }
        "SUBDAG" => {
            let external = tokens
                .next()
                .ok_or_else(|| malformed(line, "SUBDAG requires the EXTERNAL keyword"))?;
            if !external.eq_ignore_ascii_case("EXTERNAL") {
                return Err(malformed(line, "only SUBDAG EXTERNAL is supported"));
            }
            let name = tokens
                .next()
                .ok_or_else(|| malformed(line, "SUBDAG EXTERNAL requires a name"))?;
            tokens
                .next()
                .ok_or_else(|| malformed(line, "SUBDAG EXTERNAL requires a dag file"))?;
            ev.decls.push(name);
        }
        "PRIORITY" => {
            tokens
                .next()
                .ok_or_else(|| malformed(line, "PRIORITY requires a job name"))?;
            tokens
                .next()
                .ok_or_else(|| malformed(line, "PRIORITY requires a value"))?
                .parse::<i64>()
                .map_err(|_| malformed(line, "PRIORITY value must be an integer"))?;
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dagman;

    fn ast_path(text: &str) -> Result<Dag, DagmanError> {
        parse_dagman(text).and_then(|f| f.to_dag())
    }

    #[track_caller]
    fn assert_parity(text: &str) {
        for threads in [0, 1, 3] {
            match (ast_path(text), parse_dagman_to_dag(text, threads)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.num_nodes(), b.num_nodes(), "{text:?}");
                    assert_eq!(
                        a.arcs().collect::<Vec<_>>(),
                        b.arcs().collect::<Vec<_>>(),
                        "{text:?}"
                    );
                    let la: Vec<&str> = a.node_ids().map(|u| a.label(u)).collect();
                    let lb: Vec<&str> = b.node_ids().map(|u| b.label(u)).collect();
                    assert_eq!(la, lb, "{text:?}");
                }
                (a, b) => assert_eq!(a.err(), b.err(), "{text:?} (threads={threads})"),
            }
        }
    }

    #[test]
    fn matches_ast_path_on_small_inputs() {
        assert_parity("JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n");
        assert_parity("# only a comment\n\n");
        assert_parity("");
        assert_parity("JOB a a.sub\nSUBDAG EXTERNAL s s.dag\nPARENT a CHILD s\n");
        assert_parity("JOB a a.sub\nVARS a k=\"v\"\nPRIORITY a 9\nRETRY a 3\n");
    }

    #[test]
    fn matches_ast_path_on_errors() {
        assert_parity("JOB onlyname");
        assert_parity("JOB a a.sub\nJOB a b.sub"); // duplicate
        assert_parity("JOB a a.sub\nPARENT a CHILD ghost"); // unknown child
        assert_parity("JOB a a.sub\nPARENT ghost CHILD a"); // unknown parent
        assert_parity("JOB a a.sub\nPARENT a CHILD a"); // self-loop
        assert_parity("PARENT a CHILD"); // missing children
        assert_parity("VARS a nokey");
        assert_parity("VARS a k=\"unterminated");
        assert_parity("SUBDAG inner inner.dag");
        assert_parity("PRIORITY a notanumber");
        // Malformed beats duplicate regardless of line order.
        assert_parity("JOB a a.sub\nJOB a b.sub\nJOB onlyname");
        // Cycle through the final acyclicity check.
        assert_parity("JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nPARENT b CHILD a\n");
    }
}
