//! Line-based parser for DAGMan input files.
//!
//! DAGMan keywords are case-insensitive; job names and file paths are
//! case-sensitive tokens. `VARS` values are double-quoted strings with
//! backslash escapes for `"` and `\`.

use crate::ast::{DagmanFile, Statement};
use crate::error::DagmanError;
use crate::scan;
// Shared with every other frontend: each distinct name token is allocated
// once and every later occurrence clones the shared `JobName`. On large
// .dag files nearly every name token is a repeat (its `JOB` line plus one
// or more `PARENT … CHILD` mentions), so this removes the majority of
// parse-time allocations.
use prio_ir::NameInterner;

/// Inputs below this size are parsed serially even when threads are
/// requested: chunking and thread spawn cost more than the parse itself.
pub(crate) const MIN_PARALLEL_PARSE_BYTES: usize = 1 << 16;

/// Parses the text of a DAGMan input file.
pub fn parse_dagman(text: &str) -> Result<DagmanFile, DagmanError> {
    let _span = prio_obs::span(prio_obs::stage::PARSE);
    prio_obs::counter("dagman.parse.serial_parses").add(1);
    // One O(bytes) SWAR scan to pre-size the statement vector beats
    // letting a multi-megabyte Vec regrow-and-copy its way up.
    let mut statements = Vec::with_capacity(scan::count_lines(text));
    let mut names = NameInterner::default();
    for (i, raw) in scan::lines(text).enumerate() {
        let line = i + 1;
        statements.push(parse_line(raw, line, &mut names)?);
    }
    Ok(DagmanFile { statements })
}

/// [`parse_dagman`] with the input sharded across up to `threads` scoped
/// worker threads (`0`/`1` = the serial path).
///
/// The input is split at statement (line) boundaries into near-even byte
/// chunks, each parsed independently with the starting line number the
/// serial parser would have reached; statement lists are then concatenated
/// in chunk order. Errors stop each worker at its first bad line, and the
/// error of the lowest chunk — i.e. the lowest line number, exactly the
/// serial parser's error — wins. Results are bit-identical to
/// [`parse_dagman`] for every thread count.
pub fn parse_dagman_threads(text: &str, threads: usize) -> Result<DagmanFile, DagmanError> {
    if threads <= 1 || text.len() < MIN_PARALLEL_PARSE_BYTES {
        return parse_dagman(text);
    }
    let _span = prio_obs::span(prio_obs::stage::PARSE);
    let chunks = scan::chunk_at_lines(text, threads);
    prio_obs::counter("dagman.parse.parallel_chunks").add(chunks.len() as u64);
    let mut results: Vec<Option<Result<Vec<Statement>, DagmanError>>> =
        (0..chunks.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        for (range, start_line) in &chunks {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            let chunk = &text[range.clone()];
            let start_line = *start_line;
            scope.spawn(move || {
                let mut names = NameInterner::default();
                let mut statements = Vec::with_capacity(scan::count_lines(chunk));
                let mut out = Ok(());
                for (i, raw) in scan::lines(chunk).enumerate() {
                    match parse_line(raw, start_line + i, &mut names) {
                        Ok(s) => statements.push(s),
                        Err(e) => {
                            out = Err(e);
                            break;
                        }
                    }
                }
                *slot = Some(out.map(|()| statements));
            });
        }
    });
    let mut statements = Vec::with_capacity(scan::count_lines(text));
    for r in results {
        statements.extend(r.expect("every chunk parsed")?);
    }
    Ok(DagmanFile { statements })
}

fn parse_line(raw: &str, line: usize, names: &mut NameInterner) -> Result<Statement, DagmanError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(Statement::Blank);
    }
    if trimmed.starts_with('#') {
        return Ok(Statement::Comment(raw.to_string()));
    }
    let mut tokens = trimmed.split_whitespace();
    let keyword = tokens.next().expect("non-empty line has a first token");
    // Keywords are short ASCII, so case-fold into a stack buffer — the old
    // `to_ascii_uppercase()` allocated a String on every single line.
    let mut kwbuf = [0u8; 8];
    let keyword = if keyword.len() <= kwbuf.len() {
        let buf = &mut kwbuf[..keyword.len()];
        buf.copy_from_slice(keyword.as_bytes());
        buf.make_ascii_uppercase();
        std::str::from_utf8(buf).unwrap_or("")
    } else {
        "" // longer than any keyword: passes through as Other
    };
    match keyword {
        "JOB" => {
            let name = names.intern(
                tokens
                    .next()
                    .ok_or_else(|| malformed(line, "JOB requires a name"))?,
            );
            let submit_file = tokens
                .next()
                .ok_or_else(|| malformed(line, "JOB requires a submit description file"))?
                .to_string();
            let options = tokens.map(str::to_string).collect();
            Ok(Statement::Job {
                name,
                submit_file,
                options,
            })
        }
        "PARENT" => {
            let mut parents = Vec::new();
            let mut children = Vec::new();
            let mut in_children = false;
            for t in tokens {
                // `CHILD` is the separator keyword only at the boundary:
                // after at least one parent and before the children begin.
                // A first token spelled "child" is a job name (so a parent
                // named `child` parses — the writer puts such a parent
                // first), and once in children mode every token is a name.
                if !in_children && !parents.is_empty() && t.eq_ignore_ascii_case("CHILD") {
                    in_children = true;
                } else if in_children {
                    children.push(names.intern(t));
                } else {
                    parents.push(names.intern(t));
                }
            }
            if parents.is_empty() || children.is_empty() {
                return Err(malformed(line, "PARENT … CHILD … requires both lists"));
            }
            Ok(Statement::ParentChild { parents, children })
        }
        "VARS" => {
            let job = names.intern(
                tokens
                    .next()
                    .ok_or_else(|| malformed(line, "VARS requires a job name"))?,
            );
            // Re-scan the remainder of the raw line to honor quoting.
            let rest_start = find_after_token(trimmed, 2);
            let mut pairs = Vec::new();
            parse_vars_pairs_into(&trimmed[rest_start..], line, Some(&mut pairs))?;
            if pairs.is_empty() {
                return Err(malformed(line, "VARS requires at least one key=\"value\""));
            }
            Ok(Statement::Vars { job, pairs })
        }
        "SUBDAG" => {
            let external = tokens
                .next()
                .ok_or_else(|| malformed(line, "SUBDAG requires the EXTERNAL keyword"))?;
            if !external.eq_ignore_ascii_case("EXTERNAL") {
                return Err(malformed(line, "only SUBDAG EXTERNAL is supported"));
            }
            let name = names.intern(
                tokens
                    .next()
                    .ok_or_else(|| malformed(line, "SUBDAG EXTERNAL requires a name"))?,
            );
            let dag_file = tokens
                .next()
                .ok_or_else(|| malformed(line, "SUBDAG EXTERNAL requires a dag file"))?
                .to_string();
            Ok(Statement::Subdag { name, dag_file })
        }
        "PRIORITY" => {
            let job = names.intern(
                tokens
                    .next()
                    .ok_or_else(|| malformed(line, "PRIORITY requires a job name"))?,
            );
            let value = tokens
                .next()
                .ok_or_else(|| malformed(line, "PRIORITY requires a value"))?
                .parse()
                .map_err(|_| malformed(line, "PRIORITY value must be an integer"))?;
            Ok(Statement::Priority { job, value })
        }
        _ => Ok(Statement::Other(raw.to_string())),
    }
}

/// Byte offset just past the `n`-th whitespace-separated token of `s`.
pub(crate) fn find_after_token(s: &str, n: usize) -> usize {
    let mut count = 0;
    let mut in_token = false;
    for (i, ch) in s.char_indices() {
        if ch.is_whitespace() {
            if in_token {
                count += 1;
                if count == n {
                    return i;
                }
                in_token = false;
            }
        } else {
            in_token = true;
        }
    }
    s.len()
}

/// Parses `key="value"` pairs, honoring `\"` and `\\` escapes inside
/// values. Returns the pair count; the pairs themselves are built only
/// when `sink` is provided, so the direct parse-to-dag path — which needs
/// validation but not the values — runs this allocation-free.
pub(crate) fn parse_vars_pairs_into(
    s: &str,
    line: usize,
    mut sink: Option<&mut Vec<(String, String)>>,
) -> Result<usize, DagmanError> {
    let mut count = 0usize;
    let mut chars = s.char_indices().peekable();
    loop {
        // Skip whitespace.
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&(start, _)) = chars.peek() else {
            break;
        };
        // Key runs until '='.
        let mut key_end = start;
        let mut found_eq = false;
        for (i, c) in chars.by_ref() {
            if c == '=' {
                key_end = i;
                found_eq = true;
                break;
            }
        }
        if !found_eq {
            return Err(malformed(line, "VARS entry missing '='"));
        }
        let key = s[start..key_end].trim();
        if key.is_empty() {
            return Err(malformed(line, "VARS entry with empty key"));
        }
        // Value must be a quoted string.
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(malformed(line, "VARS value must be double-quoted")),
        }
        let mut value = sink.as_ref().map(|_| String::new());
        let mut closed = false;
        while let Some((_, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, escaped @ ('"' | '\\'))) => {
                        if let Some(v) = value.as_mut() {
                            v.push(escaped);
                        }
                    }
                    Some((_, other)) => {
                        if let Some(v) = value.as_mut() {
                            v.push('\\');
                            v.push(other);
                        }
                    }
                    None => return Err(malformed(line, "dangling escape in VARS value")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                other => {
                    if let Some(v) = value.as_mut() {
                        v.push(other);
                    }
                }
            }
        }
        if !closed {
            return Err(malformed(line, "unterminated VARS value"));
        }
        count += 1;
        if let Some(pairs) = sink.as_mut() {
            pairs.push((
                key.to_string(),
                value.take().expect("sink implies a built value"),
            ));
        }
    }
    Ok(count)
}

pub(crate) fn malformed(line: usize, message: &str) -> DagmanError {
    DagmanError::Malformed {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = "\
# IV.dag
JOB a a.submit
JOB b b.submit
JOB c c.submit
JOB d d.submit
JOB e e.submit
PARENT a CHILD b
PARENT c CHILD d e
";

    #[test]
    fn parses_fig3() {
        let f = parse_dagman(FIG3).unwrap();
        assert_eq!(f.job_names(), vec!["a", "b", "c", "d", "e"]);
        let dag = f.to_dag().unwrap();
        assert_eq!(dag.num_arcs(), 3);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let f = parse_dagman("job x x.sub\nparent x child x2\nJob x2 y.sub").unwrap();
        assert_eq!(f.job_names(), vec!["x", "x2"]);
        assert!(matches!(&f.statements[1], Statement::ParentChild { .. }));
    }

    #[test]
    fn job_options_preserved() {
        let f = parse_dagman("JOB a a.sub DIR subdir DONE").unwrap();
        match &f.statements[0] {
            Statement::Job { options, .. } => {
                assert_eq!(
                    options,
                    &vec!["DIR".to_string(), "subdir".into(), "DONE".into()]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vars_with_quotes_and_escapes() {
        let f =
            parse_dagman("JOB a a.sub\nVARS a jobpriority=\"5\" note=\"say \\\"hi\\\"\"").unwrap();
        assert_eq!(f.vars_value("a", "jobpriority"), Some("5"));
        assert_eq!(f.vars_value("a", "note"), Some("say \"hi\""));
    }

    #[test]
    fn unknown_keywords_pass_through() {
        let f = parse_dagman("RETRY a 3\nCONFIG dagman.config\nSCRIPT PRE a setup.sh").unwrap();
        assert!(f
            .statements
            .iter()
            .all(|s| matches!(s, Statement::Other(_))));
    }

    #[test]
    fn subdag_external_parses_and_counts_as_node() {
        let f =
            parse_dagman("JOB a a.sub\nSUBDAG EXTERNAL inner inner.dag\nPARENT a CHILD inner\n")
                .unwrap();
        assert_eq!(f.job_names(), vec!["a", "inner"]);
        let dag = f.to_dag().unwrap();
        assert_eq!(dag.num_nodes(), 2);
        assert_eq!(dag.num_arcs(), 1);
        // Malformed variants.
        assert!(parse_dagman("SUBDAG inner inner.dag").is_err());
        assert!(parse_dagman("SUBDAG EXTERNAL inner").is_err());
    }

    #[test]
    fn priority_statement_parses() {
        let f = parse_dagman("JOB a a.sub\nPRIORITY a 42\n").unwrap();
        assert!(matches!(
            f.statements[1],
            Statement::Priority { ref job, value: 42 } if &**job == "a"
        ));
        assert!(parse_dagman("PRIORITY a notanumber").is_err());
        assert!(parse_dagman("PRIORITY a").is_err());
    }

    #[test]
    fn malformed_statements_error_with_line() {
        let e = parse_dagman("JOB onlyname").unwrap_err();
        assert!(matches!(e, DagmanError::Malformed { line: 1, .. }));
        let e = parse_dagman("\n\nPARENT a CHILD").unwrap_err();
        assert!(matches!(e, DagmanError::Malformed { line: 3, .. }));
        let e = parse_dagman("VARS a nokey").unwrap_err();
        assert!(matches!(e, DagmanError::Malformed { .. }));
        let e = parse_dagman("VARS a k=\"unterminated").unwrap_err();
        assert!(matches!(e, DagmanError::Malformed { .. }));
    }

    #[test]
    fn blank_and_comment_lines_kept() {
        let f = parse_dagman("# top\n\nJOB a a.sub\n").unwrap();
        assert!(matches!(f.statements[0], Statement::Comment(_)));
        assert!(matches!(f.statements[1], Statement::Blank));
    }
}
