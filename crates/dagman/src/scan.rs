//! SWAR byte scanning for the DAGMan parser's front end.
//!
//! The parser's hot inner loops are "find the next newline" and "how many
//! lines are there" over multi-gigabyte inputs. `std` gives no `memchr`,
//! and this workspace bakes in no external crates, so the primitives here
//! hand-roll the classic SWAR (SIMD-within-a-register) zero-byte test over
//! `u64` words — 8 bytes per iteration, no `unsafe`, no dependencies:
//!
//! * [`find_byte`] — `memchr` over a byte slice;
//! * [`count_byte`] / [`count_lines`] — population counts, used to pre-size
//!   statement vectors in one pass instead of letting them regrow;
//! * [`lines`] — a [`str::lines`]-equivalent iterator built on
//!   [`find_byte`] (property-tested against the std implementation);
//! * [`chunk_at_lines`] — splits input into near-even byte ranges advanced
//!   to statement (line) boundaries, each tagged with its 1-based starting
//!   line number, so parser workers can process chunks independently while
//!   reporting exactly the line numbers the serial parser would.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// A word whose every lane holds `b`.
#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// The classic SWAR zero-lane test: the high bit of each lane of the
/// result is set iff that lane of `w` is zero (lanes with their own high
/// bit set cannot false-positive because `!w` clears theirs).
#[inline]
fn zero_lane_mask(w: u64) -> u64 {
    w.wrapping_sub(LO) & !w & HI
}

/// Index of the first occurrence of `needle` in `hay` (a dependency-free
/// `memchr`).
#[inline]
pub fn find_byte(hay: &[u8], needle: u8) -> Option<usize> {
    let pat = splat(needle);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk")) ^ pat;
        let m = zero_lane_mask(w);
        if m != 0 {
            return Some(base + (m.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// Number of occurrences of `needle` in `hay`.
pub fn count_byte(hay: &[u8], needle: u8) -> usize {
    let pat = splat(needle);
    let mut chunks = hay.chunks_exact(8);
    let mut count = 0usize;
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().expect("8-byte chunk")) ^ pat;
        count += zero_lane_mask(w).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == needle).count()
}

/// Number of lines in `text`, as [`str::lines`] would count them (a final
/// unterminated line counts; a trailing newline does not add one).
pub fn count_lines(text: &str) -> usize {
    let b = text.as_bytes();
    match b.last() {
        None => 0,
        Some(b'\n') => count_byte(b, b'\n'),
        Some(_) => count_byte(b, b'\n') + 1,
    }
}

/// A [`str::lines`]-equivalent iterator driven by [`find_byte`]:
/// lines split at `\n`, a `\r` immediately before a `\n` is stripped, and
/// the final line needs no terminator. Property-tested identical to
/// `str::lines` on arbitrary input.
pub fn lines(text: &str) -> LineIter<'_> {
    LineIter { text, pos: 0 }
}

/// Iterator returned by [`lines`].
#[derive(Debug, Clone)]
pub struct LineIter<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Iterator for LineIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.pos >= self.text.len() {
            return None;
        }
        let bytes = self.text.as_bytes();
        let (mut end, next) = match find_byte(&bytes[self.pos..], b'\n') {
            Some(i) => {
                // `\r` is part of the terminator only when a `\n` follows.
                let line_end = self.pos + i;
                let stripped = if line_end > self.pos && bytes[line_end - 1] == b'\r' {
                    line_end - 1
                } else {
                    line_end
                };
                (stripped, line_end + 1)
            }
            None => (self.text.len(), self.text.len()),
        };
        if end < self.pos {
            end = self.pos; // unreachable; guards slicing below
        }
        let line = &self.text[self.pos..end];
        self.pos = next;
        Some(line)
    }
}

/// Splits `text` into at most `chunks` non-empty byte ranges, each ending
/// just after a newline (except possibly the last), tagged with the
/// 1-based line number its first line has in the whole input. Every line
/// lies entirely within one chunk, so per-chunk parsers see exactly the
/// lines — and report exactly the line numbers — the serial parser would.
pub fn chunk_at_lines(text: &str, chunks: usize) -> Vec<(std::ops::Range<usize>, usize)> {
    let n = text.len();
    let chunks = chunks.max(1);
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut start_line = 1usize;
    for i in 0..chunks {
        if start >= n {
            break;
        }
        let end = if i + 1 == chunks {
            n
        } else {
            let target = n * (i + 1) / chunks;
            if target <= start {
                continue; // an earlier chunk already swallowed this range
            }
            // Advance to just past the next newline (a `\n` is always a
            // UTF-8 character boundary, so the split is safe).
            match find_byte(&bytes[target..], b'\n') {
                Some(off) => target + off + 1,
                None => n,
            }
        };
        out.push((start..end, start_line));
        start_line += count_byte(&bytes[start..end], b'\n');
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn find_byte_matches_position() {
        let hay = b"JOB a a.submit\nPARENT a CHILD b\n";
        for needle in [b'\n', b' ', b'J', b'z'] {
            assert_eq!(
                find_byte(hay, needle),
                hay.iter().position(|&b| b == needle),
                "needle {needle:?}"
            );
        }
        // Straddles the 8-byte word boundary.
        for i in 0..24 {
            let mut v = vec![b'x'; 24];
            v[i] = b'\n';
            assert_eq!(find_byte(&v, b'\n'), Some(i));
        }
        assert_eq!(find_byte(&[], b'\n'), None);
    }

    #[test]
    fn count_matches_filter() {
        let hay = b"a\nbb\n\nccc";
        assert_eq!(count_byte(hay, b'\n'), 3);
        assert_eq!(count_byte(&[b'\n'; 17], b'\n'), 17);
        assert_eq!(count_byte(b"", b'\n'), 0);
    }

    #[test]
    fn count_lines_matches_std() {
        for t in ["", "a", "a\n", "a\nb", "a\nb\n", "\n", "\r\n", "a\r\nb"] {
            assert_eq!(count_lines(t), t.lines().count(), "{t:?}");
        }
    }

    #[test]
    fn chunks_cover_input_at_line_boundaries() {
        let text = "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nPARENT a CHILD b c\n";
        for t in 1..6 {
            let parts = chunk_at_lines(text, t);
            let mut pos = 0;
            let mut line = 1;
            for (range, start_line) in &parts {
                assert_eq!(range.start, pos, "contiguous");
                assert_eq!(*start_line, line);
                line += count_byte(&text.as_bytes()[range.clone()], b'\n');
                pos = range.end;
            }
            assert_eq!(pos, text.len(), "chunks cover all of the input");
            // Chunked line iteration equals whole-input line iteration.
            let rejoined: Vec<&str> = parts
                .iter()
                .flat_map(|(r, _)| lines(&text[r.clone()]))
                .collect();
            assert_eq!(rejoined, text.lines().collect::<Vec<_>>());
        }
    }

    /// Strings over a small alphabet rich in `\r`/`\n` edge cases.
    fn arb_text(max: usize) -> impl Strategy<Value = String> {
        const ALPHABET: [char; 6] = ['a', 'b', 'c', ' ', '\r', '\n'];
        proptest::collection::vec(0usize..ALPHABET.len(), 0..max)
            .prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
    }

    proptest! {
        #[test]
        fn lines_matches_std_lines(s in arb_text(64)) {
            prop_assert_eq!(lines(&s).collect::<Vec<_>>(), s.lines().collect::<Vec<_>>());
            prop_assert_eq!(count_lines(&s), s.lines().count());
        }

        #[test]
        fn chunked_lines_match_std(s in arb_text(128), t in 1usize..5) {
            let parts = chunk_at_lines(&s, t);
            let rejoined: Vec<&str> = parts
                .iter()
                .flat_map(|(r, _)| lines(&s[r.clone()]))
                .collect();
            prop_assert_eq!(rejoined, s.lines().collect::<Vec<_>>());
        }
    }
}
