//! Serialization of DAGMan files back to text.

use crate::ast::{DagmanFile, Statement};
use std::fmt::Write as _;

/// Serializes the file, one statement per line, ending with a newline for
/// non-empty files.
pub fn write_dagman(file: &DagmanFile) -> String {
    let _span = prio_obs::span(prio_obs::stage::WRITE);
    let mut out = String::new();
    for s in &file.statements {
        // Statement's Display escapes VARS values.
        let _ = writeln!(out, "{}", render(s));
    }
    out
}

fn render(s: &Statement) -> String {
    match s {
        Statement::Vars { job, pairs } => {
            let mut line = format!("VARS {job}");
            for (k, v) in pairs {
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = write!(line, " {k}=\"{escaped}\"");
            }
            line
        }
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dagman;

    const SAMPLE: &str = "\
# header comment
JOB a a.submit
JOB b b.submit DIR subdir
PARENT a CHILD b
VARS a jobpriority=\"2\"
RETRY b 3

# trailing comment
";

    #[test]
    fn roundtrip_preserves_text() {
        let f = parse_dagman(SAMPLE).unwrap();
        assert_eq!(write_dagman(&f), SAMPLE);
    }

    #[test]
    fn roundtrip_of_escaped_vars() {
        let text = "JOB a a.sub\nVARS a note=\"say \\\"hi\\\" and \\\\slash\"\n";
        let f = parse_dagman(text).unwrap();
        assert_eq!(write_dagman(&f), text);
        // And the parsed value is unescaped.
        assert_eq!(f.vars_value("a", "note"), Some("say \"hi\" and \\slash"));
    }

    #[test]
    fn empty_file() {
        let f = parse_dagman("").unwrap();
        assert_eq!(write_dagman(&f), "");
    }

    #[test]
    fn reparse_of_rendered_output_is_identity() {
        let f = parse_dagman(SAMPLE).unwrap();
        let rendered = write_dagman(&f);
        let f2 = parse_dagman(&rendered).unwrap();
        assert_eq!(f, f2);
    }
}
