//! Serialization of DAGMan files back to text.

use crate::ast::{DagmanFile, Statement};
use std::fmt::Write as _;

/// Serializes the file, one statement per line, ending with a newline for
/// non-empty files.
pub fn write_dagman(file: &DagmanFile) -> String {
    let _span = prio_obs::span(prio_obs::stage::WRITE);
    let mut out = String::new();
    for s in &file.statements {
        render_into(s, &mut out);
    }
    out
}

/// Appends `s` (usually one line; a `PARENT` statement with parents the
/// parser would mistake for the `CHILD` keyword becomes several).
fn render_into(s: &Statement, out: &mut String) {
    match s {
        Statement::Vars { job, pairs } => {
            let _ = write!(out, "VARS {job}");
            for (k, v) in pairs {
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = write!(out, " {k}=\"{escaped}\"");
            }
            out.push('\n');
        }
        Statement::ParentChild { parents, children } if needs_split(parents) => {
            // A non-first parent spelled `child` (any case) would be read
            // back as the CHILD separator. Each such parent gets its own
            // single-parent statement, where the first-token position makes
            // it unambiguously a name; the remaining parents keep one
            // shared statement. The arc set is unchanged.
            let (ambiguous, plain): (Vec<_>, Vec<_>) = parents
                .iter()
                .partition(|p| p.eq_ignore_ascii_case("CHILD"));
            let child_list = children
                .iter()
                .map(|c| c.as_ref())
                .collect::<Vec<_>>()
                .join(" ");
            for p in ambiguous {
                let _ = writeln!(out, "PARENT {p} CHILD {child_list}");
            }
            if !plain.is_empty() {
                let parent_list = plain
                    .iter()
                    .map(|p| p.as_ref())
                    .collect::<Vec<_>>()
                    .join(" ");
                let _ = writeln!(out, "PARENT {parent_list} CHILD {child_list}");
            }
        }
        other => {
            let _ = writeln!(out, "{other}");
        }
    }
}

/// Whether a parent list cannot be written as one statement: some parent
/// after the first would be parsed as the `CHILD` keyword.
fn needs_split(parents: &[crate::ast::JobName]) -> bool {
    parents
        .iter()
        .skip(1)
        .any(|p| p.eq_ignore_ascii_case("CHILD"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_dagman;

    const SAMPLE: &str = "\
# header comment
JOB a a.submit
JOB b b.submit DIR subdir
PARENT a CHILD b
VARS a jobpriority=\"2\"
RETRY b 3

# trailing comment
";

    #[test]
    fn roundtrip_preserves_text() {
        let f = parse_dagman(SAMPLE).unwrap();
        assert_eq!(write_dagman(&f), SAMPLE);
    }

    #[test]
    fn roundtrip_of_escaped_vars() {
        let text = "JOB a a.sub\nVARS a note=\"say \\\"hi\\\" and \\\\slash\"\n";
        let f = parse_dagman(text).unwrap();
        assert_eq!(write_dagman(&f), text);
        // And the parsed value is unescaped.
        assert_eq!(f.vars_value("a", "note"), Some("say \"hi\" and \\slash"));
    }

    #[test]
    fn empty_file() {
        let f = parse_dagman("").unwrap();
        assert_eq!(write_dagman(&f), "");
    }

    #[test]
    fn parents_spelled_child_are_split_into_unambiguous_statements() {
        use crate::ast::JobName;
        let name = JobName::from;
        let f = DagmanFile {
            statements: vec![Statement::ParentChild {
                parents: vec![name("a"), name("child"), name("CHILD")],
                children: vec![name("x"), name("y")],
            }],
        };
        let out = write_dagman(&f);
        // Ambiguous parents each get the first-token position; the rest
        // share one statement.
        assert_eq!(
            out,
            "PARENT child CHILD x y\nPARENT CHILD CHILD x y\nPARENT a CHILD x y\n"
        );
        // Re-parsing yields the same arc set.
        let mut arcs = std::collections::BTreeSet::new();
        for s in &parse_dagman(&out).unwrap().statements {
            if let Statement::ParentChild { parents, children } = s {
                for p in parents {
                    for c in children {
                        arcs.insert((p.to_string(), c.to_string()));
                    }
                }
            }
        }
        assert_eq!(arcs.len(), 6, "3 parents x 2 children:\n{out}");
    }

    #[test]
    fn reparse_of_rendered_output_is_identity() {
        let f = parse_dagman(SAMPLE).unwrap();
        let rendered = write_dagman(&f);
        let f2 = parse_dagman(&rendered).unwrap();
        assert_eq!(f, f2);
    }
}
