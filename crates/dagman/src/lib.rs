//! # prio-dagman — the DAGMan / Condor file substrate (§3.2)
//!
//! The `prio` tool operates on *DAGMan input files* (the argument of
//! `condor_submit_dag`) and on the *job-submit description files* (JSDFs)
//! each `JOB` statement references. This crate implements both formats:
//!
//! * a line-faithful parser and writer for DAGMan input files ([`parse`],
//!   [`ast`], [`write()`][crate::write::write_dagman]) — comments, unknown keywords and formatting are
//!   preserved so instrumentation produces a minimal diff, exactly like the
//!   paper's Fig. 3 (bold lines added, everything else untouched);
//! * extraction of the job-dependency DAG from `JOB`/`PARENT … CHILD`
//!   statements ([`ast::DagmanFile::to_dag`]);
//! * the instrumentation step: defining the `jobpriority` macro for every
//!   job via `VARS` statements in the DAGMan file, and assigning
//!   `priority = $(jobpriority)` in each JSDF ([`instrument`], [`jsdf`]).
//!
//! Since the workflow-IR refactor this crate is *one frontend among
//! several*: [`frontend::DagmanFrontend`] implements
//! [`prio_ir::Frontend`], importing DAGMan text into a
//! [`prio_ir::Workflow`] and exporting workflows back to canonical DAGMan
//! text, and [`frontend::registry()`] assembles the full format registry
//! (DAGMan + JSON + edge list). Composing frontends with the scheduler
//! lives in the `dagprio` facade and the `prio` CLI, mirroring how the
//! paper's tool wraps the heuristic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod direct;
pub mod error;
pub mod frontend;
pub mod instrument;
pub mod io;
pub mod jsdf;
pub mod parse;
pub mod scan;
pub mod write;

pub use ast::{DagmanFile, JobName, Statement};
pub use direct::parse_dagman_to_dag;
pub use error::DagmanError;
pub use frontend::{registry, DagmanFrontend};
pub use instrument::{
    instrument_dagman, instrument_dagman_with, priorities_by_job, InstrumentMode,
};
pub use io::read_input;
pub use jsdf::Jsdf;
pub use parse::{parse_dagman, parse_dagman_threads};
