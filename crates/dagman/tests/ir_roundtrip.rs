//! Round-trip property tests for the frontend layer: DAGMan → IR →
//! DAGMan preserves the job set, the arc set, and any priorities — and a
//! second export is byte-for-byte identical (the exporter is canonical).
//! Runs over the four scientific workloads (AIRSN, Inspiral, Montage,
//! SDSS, scaled down so the suite stays fast) plus seeded random dags,
//! and crosses through the JSON and edge-list frontends to check that
//! every conversion path lands on the same content.

use prio_dagman::{registry, DagmanFrontend};
use prio_graph::{Dag, NodeId};
use prio_ir::{FormatId, Frontend, Priorities, Workflow};
use prio_workloads::random_dag::{forward_pairs, layered, LayeredParams};
use prio_workloads::spec::scaled_suite;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded priorities covering the interesting shapes: none, partial,
/// negative, and large values.
fn seeded_priorities(dag: &Dag, seed: u64) -> Priorities {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Priorities::none(dag.num_nodes());
    for u in dag.node_ids() {
        if rng.gen_bool(0.7) {
            // Signed draw via an unsigned sample (the rand shim's ranges
            // are unsigned-only): uniform over [-1_000_000, 1_000_000).
            p.set(u, rng.gen_range(0u64..2_000_000) as i64 - 1_000_000);
        }
    }
    p
}

/// The core assertion: exporting `dag` (with priorities) as DAGMan and
/// re-importing yields the identical IR, and re-exporting the re-import
/// is byte-for-byte identical text. Then each cross-format path
/// (dagman→json→dagman, dagman→edges→dagman) must preserve the content.
fn assert_round_trips(dag: &Dag, seed: u64) {
    let f = DagmanFrontend;
    let workflow = Workflow::synthetic(dag.clone());
    let priorities = seeded_priorities(dag, seed);

    let text = f.export(&workflow, &priorities);
    let back = f.import(&text).expect("own export re-imports");

    // Job set (names in index order), arc set, and priorities survive.
    assert_eq!(back.dag(), workflow.dag(), "dag changed in round-trip");
    for u in dag.node_ids() {
        assert_eq!(
            back.priorities().get(u),
            priorities.get(u),
            "priority of {} changed",
            dag.label(u)
        );
    }
    // Byte-for-byte: the exporter is canonical.
    assert_eq!(
        f.export(&back, back.priorities()),
        text,
        "second export differs"
    );

    // Cross-format: dagman → X → dagman lands on the same content.
    let reg = registry();
    for id in [FormatId::Json, FormatId::Edges] {
        let other = reg.get(id).expect("builtin frontend");
        let via = other.export(&back, back.priorities());
        let imported = other
            .import(&via)
            .unwrap_or_else(|e| panic!("{id} rejects its own export: {e}"));
        assert!(
            imported.same_content(&back),
            "dagman->{id}->ir changed content"
        );
        let home = f
            .import(&f.export(&imported, imported.priorities()))
            .unwrap();
        assert!(home.same_content(&back), "{id}->dagman changed content");
    }
}

#[test]
fn scientific_workloads_round_trip() {
    // AIRSN / Inspiral / Montage / SDSS with the structural features of
    // the paper-scale dags, scaled down so the whole suite stays fast.
    for (i, w) in scaled_suite(0.05).iter().enumerate() {
        assert_round_trips(w.dag(), 0xD46_0000 + i as u64);
    }
}

#[test]
fn priorities_with_extremes_round_trip() {
    let mut p = Priorities::none(3);
    p.set(NodeId(0), i64::MIN + 1);
    p.set(NodeId(2), i64::MAX);
    let dag = layered(
        LayeredParams {
            layers: 1,
            width: 3,
            arc_prob: 0.0,
        },
        &mut SmallRng::seed_from_u64(1),
    );
    let f = DagmanFrontend;
    let text = f.export(&Workflow::synthetic(dag), &p);
    let back = f.import(&text).unwrap();
    assert_eq!(back.priorities().get(NodeId(0)), Some(i64::MIN + 1));
    assert_eq!(back.priorities().get(NodeId(1)), None);
    assert_eq!(back.priorities().get(NodeId(2)), Some(i64::MAX));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_layered_dags_round_trip(
        seed in any::<u64>(),
        layers in 1usize..6,
        width in 1usize..8,
        arc_prob_pct in 5u32..90,
    ) {
        let p = LayeredParams { layers, width, arc_prob: f64::from(arc_prob_pct) / 100.0 };
        let dag = layered(p, &mut SmallRng::seed_from_u64(seed));
        assert_round_trips(&dag, seed ^ 0xF00D);
    }

    #[test]
    fn random_forward_pair_dags_round_trip(
        seed in any::<u64>(),
        n in 1usize..24,
        arc_prob_pct in 0u32..70,
    ) {
        let dag = forward_pairs(n, f64::from(arc_prob_pct) / 100.0, &mut SmallRng::seed_from_u64(seed));
        assert_round_trips(&dag, seed ^ 0xBEEF);
    }
}
