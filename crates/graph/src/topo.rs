//! Topological sorting and linear-extension utilities.
//!
//! Every schedule in the paper is a *linear extension* of the job DAG: a
//! total order in which each job appears after all of its parents. The
//! functions here produce canonical topological orders and validate orders
//! produced elsewhere (e.g. by the PRIO heuristic or the FIFO baseline).

use crate::dag::{Dag, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Returns a deterministic topological order of `dag`.
///
/// Kahn's algorithm driven by a min-heap on node index, so among all ready
/// nodes the smallest index is emitted first. The result is a valid linear
/// extension and is stable across runs and platforms.
pub fn topo_order(dag: &Dag) -> Vec<NodeId> {
    let n = dag.num_nodes();
    let mut indeg: Vec<usize> = dag.node_ids().map(|u| dag.in_degree(u)).collect();
    let mut heap: BinaryHeap<Reverse<NodeId>> = dag
        .node_ids()
        .filter(|u| indeg[u.index()] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(u)) = heap.pop() {
        order.push(u);
        for &v in dag.children(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                heap.push(Reverse(v));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "Dag invariant guarantees acyclicity");
    order
}

/// Returns `rank[u] = position of u` in the canonical topological order.
pub fn topo_ranks(dag: &Dag) -> Vec<usize> {
    let order = topo_order(dag);
    let mut rank = vec![0usize; dag.num_nodes()];
    for (i, u) in order.iter().enumerate() {
        rank[u.index()] = i;
    }
    rank
}

/// Checks that `order` is a permutation of all nodes of `dag` that respects
/// every arc (each parent precedes each child).
pub fn is_linear_extension(dag: &Dag, order: &[NodeId]) -> bool {
    let n = dag.num_nodes();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, u) in order.iter().enumerate() {
        if u.index() >= n || pos[u.index()] != usize::MAX {
            return false; // out of range or duplicate
        }
        pos[u.index()] = i;
    }
    dag.arcs().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// Computes, for each node, the length (number of arcs) of the longest
/// directed path from any source to that node ("depth"; sources have 0).
pub fn depths(dag: &Dag) -> Vec<usize> {
    let order = topo_order(dag);
    let mut depth = vec![0usize; dag.num_nodes()];
    for &u in &order {
        for &v in dag.children(u) {
            depth[v.index()] = depth[v.index()].max(depth[u.index()] + 1);
        }
    }
    depth
}

/// Computes, for each node, the length (number of arcs) of the longest
/// directed path from that node to any sink ("height"; sinks have 0).
///
/// `height[u] + 1` is the classic critical-path priority of job `u` under
/// unit execution times — used by the critical-path baseline scheduler.
pub fn heights(dag: &Dag) -> Vec<usize> {
    let order = topo_order(dag);
    let mut height = vec![0usize; dag.num_nodes()];
    for &u in order.iter().rev() {
        for &v in dag.children(u) {
            height[u.index()] = height[u.index()].max(height[v.index()] + 1);
        }
    }
    height
}

/// The length of the critical path in arcs (0 for an arcless DAG).
pub fn critical_path_len(dag: &Dag) -> usize {
    heights(dag).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_is_linear_extension() {
        let d = diamond();
        let o = topo_order(&d);
        assert!(is_linear_extension(&d, &o));
        assert_eq!(o.first(), Some(&NodeId(0)));
        assert_eq!(o.last(), Some(&NodeId(3)));
    }

    #[test]
    fn topo_order_prefers_small_indices() {
        // Two independent chains; ties broken by index.
        let d = Dag::from_arcs(4, &[(0, 2), (1, 3)]).unwrap();
        let o: Vec<u32> = topo_order(&d).into_iter().map(|u| u.0).collect();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ranks_match_order() {
        let d = diamond();
        let o = topo_order(&d);
        let r = topo_ranks(&d);
        for (i, u) in o.iter().enumerate() {
            assert_eq!(r[u.index()], i);
        }
    }

    #[test]
    fn rejects_wrong_length_and_duplicates() {
        let d = diamond();
        assert!(!is_linear_extension(&d, &[NodeId(0), NodeId(1)]));
        assert!(!is_linear_extension(
            &d,
            &[NodeId(0), NodeId(1), NodeId(1), NodeId(3)]
        ));
        assert!(!is_linear_extension(
            &d,
            &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]
        ));
    }

    #[test]
    fn depth_and_height_on_diamond() {
        let d = diamond();
        assert_eq!(depths(&d), vec![0, 1, 1, 2]);
        assert_eq!(heights(&d), vec![2, 1, 1, 0]);
        assert_eq!(critical_path_len(&d), 2);
    }

    #[test]
    fn critical_path_of_chain() {
        let d = Dag::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(critical_path_len(&d), 4);
    }

    #[test]
    fn arcless_dag() {
        let d = Dag::from_arcs(3, &[]).unwrap();
        assert_eq!(critical_path_len(&d), 0);
        assert_eq!(depths(&d), vec![0, 0, 0]);
    }
}
