//! Topological sorting and linear-extension utilities.
//!
//! Every schedule in the paper is a *linear extension* of the job DAG: a
//! total order in which each job appears after all of its parents. The
//! functions here produce canonical topological orders and validate orders
//! produced elsewhere (e.g. by the PRIO heuristic or the FIFO baseline).

use crate::dag::{Dag, NodeId};
use crate::scratch::GraphScratch;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Returns a deterministic topological order of `dag`.
///
/// Kahn's algorithm driven by a min-heap on node index, so among all ready
/// nodes the smallest index is emitted first. The result is a valid linear
/// extension and is stable across runs and platforms.
pub fn topo_order(dag: &Dag) -> Vec<NodeId> {
    let n = dag.num_nodes();
    let mut indeg: Vec<usize> = dag.node_ids().map(|u| dag.in_degree(u)).collect();
    let mut heap: BinaryHeap<Reverse<NodeId>> = dag
        .node_ids()
        .filter(|u| indeg[u.index()] == 0)
        .map(Reverse)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(u)) = heap.pop() {
        order.push(u);
        for &v in dag.children(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                heap.push(Reverse(v));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "Dag invariant guarantees acyclicity");
    order
}

/// Returns `rank[u] = position of u` in the canonical topological order.
pub fn topo_ranks(dag: &Dag) -> Vec<usize> {
    let mut rank = Vec::new();
    topo_ranks_into(dag, &mut GraphScratch::new(), &mut rank);
    rank
}

/// Writes `rank[u] = position of u` in the canonical topological order
/// into `rank` (cleared and resized), borrowing `scratch` for the
/// in-degree table and ready heap instead of allocating them.
pub fn topo_ranks_into(dag: &Dag, scratch: &mut GraphScratch, rank: &mut Vec<usize>) {
    let n = dag.num_nodes();
    rank.clear();
    rank.resize(n, 0);
    scratch.indeg.clear();
    scratch
        .indeg
        .extend(dag.node_ids().map(|u| dag.in_degree(u)));
    scratch.heap.clear();
    scratch.heap.extend(
        dag.node_ids()
            .filter(|u| scratch.indeg[u.index()] == 0)
            .map(Reverse),
    );
    let mut next = 0usize;
    while let Some(Reverse(u)) = scratch.heap.pop() {
        rank[u.index()] = next;
        next += 1;
        for &v in dag.children(u) {
            scratch.indeg[v.index()] -= 1;
            if scratch.indeg[v.index()] == 0 {
                scratch.heap.push(Reverse(v));
            }
        }
    }
    debug_assert_eq!(next, n, "Dag invariant guarantees acyclicity");
}

/// Why an order fails to be a linear extension of a dag — the diagnostic
/// behind [`is_linear_extension`], surfaced by the PRIO pipeline's
/// internal-invariant errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionViolation {
    /// The order does not mention every node exactly once.
    WrongLength {
        /// Number of nodes in the dag.
        expected: usize,
        /// Length of the order.
        got: usize,
    },
    /// The order mentions a node the dag does not contain.
    OutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// The order mentions a node twice.
    Duplicate {
        /// The repeated node.
        node: NodeId,
    },
    /// An arc's child is ordered before its parent.
    ArcOutOfOrder {
        /// The arc's tail (the parent scheduled too late).
        parent: NodeId,
        /// The arc's head (the child scheduled too early).
        child: NodeId,
    },
}

impl fmt::Display for ExtensionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtensionViolation::WrongLength { expected, got } => {
                write!(f, "order has {got} entries for a dag of {expected} nodes")
            }
            ExtensionViolation::OutOfRange { node } => {
                write!(f, "order mentions nonexistent node {}", node.0)
            }
            ExtensionViolation::Duplicate { node } => {
                write!(f, "order mentions node {} twice", node.0)
            }
            ExtensionViolation::ArcOutOfOrder { parent, child } => {
                write!(
                    f,
                    "arc {} -> {} violated (child ordered first)",
                    parent.0, child.0
                )
            }
        }
    }
}

/// Returns the first violation that makes `order` fail to be a linear
/// extension of `dag`, or `None` if it is one. Arc violations are
/// reported in the dag's arc iteration order, deterministically.
pub fn linear_extension_violation(dag: &Dag, order: &[NodeId]) -> Option<ExtensionViolation> {
    let n = dag.num_nodes();
    if order.len() != n {
        return Some(ExtensionViolation::WrongLength {
            expected: n,
            got: order.len(),
        });
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        if u.index() >= n {
            return Some(ExtensionViolation::OutOfRange { node: u });
        }
        if pos[u.index()] != usize::MAX {
            return Some(ExtensionViolation::Duplicate { node: u });
        }
        pos[u.index()] = i;
    }
    dag.arcs()
        .find(|&(u, v)| pos[u.index()] >= pos[v.index()])
        .map(|(u, v)| ExtensionViolation::ArcOutOfOrder {
            parent: u,
            child: v,
        })
}

/// Checks that `order` is a permutation of all nodes of `dag` that respects
/// every arc (each parent precedes each child).
pub fn is_linear_extension(dag: &Dag, order: &[NodeId]) -> bool {
    linear_extension_violation(dag, order).is_none()
}

/// Computes, for each node, the length (number of arcs) of the longest
/// directed path from any source to that node ("depth"; sources have 0).
pub fn depths(dag: &Dag) -> Vec<usize> {
    let order = topo_order(dag);
    let mut depth = vec![0usize; dag.num_nodes()];
    for &u in &order {
        for &v in dag.children(u) {
            depth[v.index()] = depth[v.index()].max(depth[u.index()] + 1);
        }
    }
    depth
}

/// Computes, for each node, the length (number of arcs) of the longest
/// directed path from that node to any sink ("height"; sinks have 0).
///
/// `height[u] + 1` is the classic critical-path priority of job `u` under
/// unit execution times — used by the critical-path baseline scheduler.
pub fn heights(dag: &Dag) -> Vec<usize> {
    let order = topo_order(dag);
    let mut height = vec![0usize; dag.num_nodes()];
    for &u in order.iter().rev() {
        for &v in dag.children(u) {
            height[u.index()] = height[u.index()].max(height[v.index()] + 1);
        }
    }
    height
}

/// The length of the critical path in arcs (0 for an arcless DAG).
pub fn critical_path_len(dag: &Dag) -> usize {
    heights(dag).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_is_linear_extension() {
        let d = diamond();
        let o = topo_order(&d);
        assert!(is_linear_extension(&d, &o));
        assert_eq!(o.first(), Some(&NodeId(0)));
        assert_eq!(o.last(), Some(&NodeId(3)));
    }

    #[test]
    fn topo_order_prefers_small_indices() {
        // Two independent chains; ties broken by index.
        let d = Dag::from_arcs(4, &[(0, 2), (1, 3)]).unwrap();
        let o: Vec<u32> = topo_order(&d).into_iter().map(|u| u.0).collect();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ranks_match_order() {
        let d = diamond();
        let o = topo_order(&d);
        let r = topo_ranks(&d);
        for (i, u) in o.iter().enumerate() {
            assert_eq!(r[u.index()], i);
        }
    }

    #[test]
    fn rejects_wrong_length_and_duplicates() {
        let d = diamond();
        assert!(!is_linear_extension(&d, &[NodeId(0), NodeId(1)]));
        assert!(!is_linear_extension(
            &d,
            &[NodeId(0), NodeId(1), NodeId(1), NodeId(3)]
        ));
        assert!(!is_linear_extension(
            &d,
            &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]
        ));
    }

    #[test]
    fn violation_pinpoints_the_offending_arc() {
        let d = diamond();
        // Child 1 ordered before its parent 0.
        let v = linear_extension_violation(&d, &[NodeId(1), NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(
            v,
            Some(ExtensionViolation::ArcOutOfOrder {
                parent: NodeId(0),
                child: NodeId(1)
            })
        );
        assert!(v.unwrap().to_string().contains("0 -> 1"));
        let v = linear_extension_violation(&d, &[NodeId(0), NodeId(1)]);
        assert!(matches!(v, Some(ExtensionViolation::WrongLength { .. })));
        let v = linear_extension_violation(&d, &[NodeId(0), NodeId(1), NodeId(1), NodeId(3)]);
        assert_eq!(v, Some(ExtensionViolation::Duplicate { node: NodeId(1) }));
        let v = linear_extension_violation(&d, &[NodeId(0), NodeId(1), NodeId(9), NodeId(3)]);
        assert_eq!(v, Some(ExtensionViolation::OutOfRange { node: NodeId(9) }));
        assert_eq!(linear_extension_violation(&d, &topo_order(&d)), None);
    }

    #[test]
    fn topo_ranks_into_matches_fresh_allocation_across_graphs() {
        let mut scratch = GraphScratch::new();
        let mut rank = Vec::new();
        for d in [
            diamond(),
            Dag::from_arcs(6, &[(0, 5), (1, 4), (2, 3)]).unwrap(),
            Dag::from_arcs(2, &[(1, 0)]).unwrap(),
        ] {
            topo_ranks_into(&d, &mut scratch, &mut rank);
            assert_eq!(rank, topo_ranks(&d), "scratch reuse changed the ranks");
        }
    }

    #[test]
    fn depth_and_height_on_diamond() {
        let d = diamond();
        assert_eq!(depths(&d), vec![0, 1, 1, 2]);
        assert_eq!(heights(&d), vec![2, 1, 1, 0]);
        assert_eq!(critical_path_len(&d), 2);
    }

    #[test]
    fn critical_path_of_chain() {
        let d = Dag::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(critical_path_len(&d), 4);
    }

    #[test]
    fn arcless_dag() {
        let d = Dag::from_arcs(3, &[]).unwrap();
        assert_eq!(critical_path_len(&d), 0);
        assert_eq!(depths(&d), vec![0, 0, 0]);
    }
}
