//! Shortcut removal (transitive reduction) — Step 1 of the Divide phase.
//!
//! An arc `u -> v` is a *shortcut* if `v` can be reached from `u` without
//! using that arc. Shortcuts never affect job eligibility (the longer path
//! already forces the ordering) but they hide the bipartite building blocks
//! from the decomposition, so the paper removes them first, citing the
//! classical minimum-equivalent-graph algorithms of Hsu and of
//! Aho–Garey–Ullman. For a DAG the transitive reduction is unique.
//!
//! Two implementations are provided:
//!
//! * [`shortcut_arcs`] — a rank-pruned DFS per node. For each node the
//!   children are scanned in topological-rank order; a child already marked
//!   as reachable from an earlier child is a shortcut, otherwise its
//!   descendants (up to the largest child rank) are marked. This touches only
//!   the local neighbourhood for the shallow, sparse scientific dags and is
//!   the default.
//! * [`shortcut_arcs_via_closure`] — a simple oracle built on the full
//!   transitive closure; quadratic memory, used to cross-check the fast
//!   implementation in tests.

use crate::dag::{Dag, NodeId};
use crate::reach::transitive_closure;
use crate::scratch::GraphScratch;
use crate::topo::topo_ranks_into;

/// Finds all shortcut arcs using the rank-pruned DFS strategy.
///
/// Runs in `O(Σ_u cost(u))` where `cost(u)` is the size of the sub-dag
/// between `u` and its last child in topological order — effectively linear
/// on the layered scientific workflows of the paper.
pub fn shortcut_arcs(dag: &Dag) -> Vec<(NodeId, NodeId)> {
    let mut shortcuts = Vec::new();
    shortcut_arcs_into(dag, &mut GraphScratch::new(), &mut shortcuts);
    shortcuts
}

/// [`shortcut_arcs`], but writing into `out` (cleared first) and borrowing
/// the rank table, visited marks and DFS worklist from `scratch`, so a
/// caller prioritizing many dags performs no per-call allocations here.
pub fn shortcut_arcs_into(dag: &Dag, scratch: &mut GraphScratch, out: &mut Vec<(NodeId, NodeId)>) {
    let _span = prio_obs::span(prio_obs::stage::REDUCE);
    let n = dag.num_nodes();
    out.clear();
    // Rank table and traversal state all live in the scratch.
    let mut rank = std::mem::take(&mut scratch.rank);
    topo_ranks_into(dag, scratch, &mut rank);
    let mut stack = std::mem::take(&mut scratch.stack);
    let mut by_rank = std::mem::take(&mut scratch.by_rank);
    stack.clear();

    for u in dag.node_ids() {
        if dag.out_degree(u) < 2 {
            continue; // a single arc can never be a shortcut
        }
        let stamp = scratch.next_stamp(n);
        scan_source(
            dag,
            &rank,
            u,
            &mut scratch.mark,
            stamp,
            &mut stack,
            &mut by_rank,
            out,
        );
    }
    scratch.rank = rank;
    scratch.stack = stack;
    scratch.by_rank = by_rank;
    out.sort_unstable();
}

/// [`shortcut_arcs_into`] with the per-source scans sharded across
/// `threads` scoped worker threads (`0`/`1` = the serial path).
///
/// The rank table is computed once up front; each worker then owns a
/// contiguous source-node range with its own stamped-mark table and
/// worklists. Shortcut detection at one source never reads another
/// source's state, and the output is sorted at the end either way, so the
/// result is bit-identical to the serial scan for every thread count.
pub fn shortcut_arcs_par_into(
    dag: &Dag,
    scratch: &mut GraphScratch,
    threads: usize,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    let n = dag.num_nodes();
    let t = threads.min(n.max(1));
    if t <= 1 {
        return shortcut_arcs_into(dag, scratch, out);
    }
    let _span = prio_obs::span(prio_obs::stage::REDUCE);
    out.clear();
    let mut rank = std::mem::take(&mut scratch.rank);
    topo_ranks_into(dag, scratch, &mut rank);
    prio_obs::counter("graph.reduce.parallel_shards").add(t as u64);

    let rank_ref = &rank;
    let mut shards: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(t);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t);
        for i in 0..t {
            let (lo, hi) = (n * i / t, n * (i + 1) / t);
            handles.push(scope.spawn(move || {
                let mut mark = vec![0u32; n];
                let mut stamp = 0u32;
                let mut stack = Vec::new();
                let mut by_rank = Vec::new();
                let mut local = Vec::new();
                for u in (lo as u32..hi as u32).map(NodeId) {
                    if dag.out_degree(u) < 2 {
                        continue;
                    }
                    stamp += 1;
                    scan_source(
                        dag,
                        rank_ref,
                        u,
                        &mut mark,
                        stamp,
                        &mut stack,
                        &mut by_rank,
                        &mut local,
                    );
                }
                local
            }));
        }
        for h in handles {
            shards.push(h.join().expect("shortcut scan worker"));
        }
    });
    for shard in shards {
        out.extend(shard);
    }
    scratch.rank = rank;
    out.sort_unstable();
}

/// Scans one multi-child source `u` for shortcut arcs, appending findings
/// to `out`. `mark[w] == stamp` means `w` was already reached in this scan.
#[allow(clippy::too_many_arguments)]
fn scan_source(
    dag: &Dag,
    rank: &[usize],
    u: NodeId,
    mark: &mut Vec<u32>,
    stamp: u32,
    stack: &mut Vec<NodeId>,
    by_rank: &mut Vec<NodeId>,
    out: &mut Vec<(NodeId, NodeId)>,
) {
    if mark.len() < dag.num_nodes() {
        mark.resize(dag.num_nodes(), 0);
    }
    by_rank.clear();
    by_rank.extend_from_slice(dag.children(u));
    by_rank.sort_unstable_by_key(|c| rank[c.index()]);
    let max_rank = rank[by_rank.last().expect("non-empty").index()];
    for &c in by_rank.iter() {
        if mark[c.index()] == stamp {
            // Reachable from an earlier-ranked child: any path through
            // that child gives `u ->* c` avoiding the direct arc.
            out.push((u, c));
            continue;
        }
        // Keep the arc and mark everything reachable from `c` whose rank
        // does not exceed the last child's rank (no later child can be
        // reached through higher-ranked intermediates, since ranks
        // strictly increase along paths).
        mark[c.index()] = stamp;
        stack.push(c);
        while let Some(w) = stack.pop() {
            if rank[w.index()] >= max_rank {
                continue; // nothing beyond can reach back down
            }
            for &x in dag.children(w) {
                if rank[x.index()] <= max_rank && mark[x.index()] != stamp {
                    mark[x.index()] = stamp;
                    stack.push(x);
                }
            }
        }
    }
}

/// Finds all shortcut arcs via the full transitive closure (verification
/// oracle; `O(n²/64 · n)` time, `O(n²/8)` bytes).
pub fn shortcut_arcs_via_closure(dag: &Dag) -> Vec<(NodeId, NodeId)> {
    let closure = transitive_closure(dag);
    let mut shortcuts = Vec::new();
    for (u, v) in dag.arcs() {
        let through_sibling = dag
            .children(u)
            .iter()
            .any(|&c| c != v && closure[c.index()].contains(v.index()));
        if through_sibling {
            shortcuts.push((u, v));
        }
    }
    shortcuts
}

/// Returns `dag` with every shortcut arc removed (node set unchanged).
///
/// This is the `G'` of the paper: same jobs, same reachability, no redundant
/// arcs. Sources and sinks are preserved exactly (a shortcut's endpoints keep
/// at least one other incident arc by definition).
pub fn transitive_reduction(dag: &Dag) -> Dag {
    let shortcuts = shortcut_arcs(dag);
    prio_obs::counter("graph.reduce.shortcut_arcs_removed").add(shortcuts.len() as u64);
    remove_arcs(dag, &shortcuts)
}

/// Rebuilds `dag` without the given arcs (arcs not present are ignored).
///
/// Goes through [`Dag::filter_arcs`]: arc removal cannot create a cycle, so
/// the copy skips the builder's label map and acyclicity re-check entirely.
pub fn remove_arcs(dag: &Dag, remove: &[(NodeId, NodeId)]) -> Dag {
    let mut removed: Vec<(NodeId, NodeId)> = remove.to_vec();
    removed.sort_unstable();
    dag.filter_arcs(|u, v| removed.binary_search(&(u, v)).is_err())
}

/// Whether `dag` contains no shortcut arcs.
pub fn is_transitively_reduced(dag: &Dag) -> bool {
    shortcut_arcs(dag).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::is_reachable;

    #[test]
    fn triangle_shortcut_removed() {
        // 0 -> 1 -> 2 plus shortcut 0 -> 2.
        let d = Dag::from_arcs(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(shortcut_arcs(&d), vec![(NodeId(0), NodeId(2))]);
        let r = transitive_reduction(&d);
        assert_eq!(r.num_arcs(), 2);
        assert!(!r.has_arc(NodeId(0), NodeId(2)));
        assert!(is_transitively_reduced(&r));
    }

    #[test]
    fn diamond_has_no_shortcuts() {
        let d = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert!(shortcut_arcs(&d).is_empty());
        assert!(is_transitively_reduced(&d));
    }

    #[test]
    fn long_shortcut_over_chain() {
        // chain 0->1->2->3->4 plus 0->4 and 1->3.
        let d = Dag::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap();
        let s = shortcut_arcs(&d);
        assert_eq!(s, vec![(NodeId(0), NodeId(4)), (NodeId(1), NodeId(3))]);
    }

    #[test]
    fn nested_shortcuts() {
        // 0->1, 1->2, 0->2 (shortcut), 2->3, 0->3 (shortcut), 1->3 (shortcut)
        let d = Dag::from_arcs(4, &[(0, 1), (1, 2), (0, 2), (2, 3), (0, 3), (1, 3)]).unwrap();
        let r = transitive_reduction(&d);
        assert_eq!(r.num_arcs(), 3, "only the chain remains");
        // Reachability must be preserved.
        for u in d.node_ids() {
            for v in d.node_ids() {
                assert_eq!(is_reachable(&d, u, v), is_reachable(&r, u, v));
            }
        }
    }

    #[test]
    fn fast_matches_closure_oracle_on_dense_dag() {
        // A dag where every pair (i, j), i < j, with (j - i) odd is an arc.
        let mut arcs = Vec::new();
        for i in 0..12u32 {
            for j in (i + 1)..12 {
                if (j - i) % 2 == 1 {
                    arcs.push((i, j));
                }
            }
        }
        let d = Dag::from_arcs(12, &arcs).unwrap();
        assert_eq!(shortcut_arcs(&d), shortcut_arcs_via_closure(&d));
    }

    #[test]
    fn scratch_reuse_across_different_dags_matches_fresh_runs() {
        let mut scratch = GraphScratch::new();
        let mut out = Vec::new();
        let dags = [
            Dag::from_arcs(3, &[(0, 1), (1, 2), (0, 2)]).unwrap(),
            Dag::from_arcs(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]).unwrap(),
            Dag::from_arcs(2, &[(0, 1)]).unwrap(),
            Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap(),
        ];
        for d in &dags {
            shortcut_arcs_into(d, &mut scratch, &mut out);
            assert_eq!(out, shortcut_arcs(d), "scratch reuse changed the result");
            assert_eq!(out, shortcut_arcs_via_closure(d), "oracle mismatch");
        }
    }

    #[test]
    fn reduction_preserves_sources_and_sinks() {
        let d = Dag::from_arcs(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (2, 4), (0, 4)]).unwrap();
        let r = transitive_reduction(&d);
        assert_eq!(
            d.sources().collect::<Vec<_>>(),
            r.sources().collect::<Vec<_>>()
        );
        assert_eq!(d.sinks().collect::<Vec<_>>(), r.sinks().collect::<Vec<_>>());
    }

    #[test]
    fn parallel_arcless_nodes_untouched() {
        let d = Dag::from_arcs(4, &[]).unwrap();
        let r = transitive_reduction(&d);
        assert_eq!(r.num_nodes(), 4);
        assert_eq!(r.num_arcs(), 0);
    }
}
