//! Bipartite-dag tests and weak connectivity — support for Step 2 of the
//! Divide phase.
//!
//! A dag `H` is *bipartite* in the paper's sense when its node set splits
//! into non-empty `U` and `V` such that every arc leads from a node of `U`
//! to a node of `V` — equivalently, no node has both a parent and a child.
//! `H` is *connected* when the underlying undirected graph is connected.
//! The building blocks of the theoretical algorithm are maximal connected
//! bipartite sub-dags.

use crate::bitset::FixedBitSet;
use crate::dag::{Dag, NodeId};

/// Whether every arc of `dag` goes from a source to a sink, i.e. no node has
/// both parents and children. (Nodes with no arcs at all are permitted and
/// may be placed on either side.)
pub fn is_bipartite_dag(dag: &Dag) -> bool {
    dag.node_ids()
        .all(|u| dag.in_degree(u) == 0 || dag.out_degree(u) == 0)
}

/// Whether the underlying undirected graph of `dag` is connected.
/// The empty dag is considered connected vacuously.
pub fn is_weakly_connected(dag: &Dag) -> bool {
    let n = dag.num_nodes();
    if n <= 1 {
        return true;
    }
    let mut seen = FixedBitSet::new(n);
    let mut stack = vec![NodeId(0)];
    seen.insert(0);
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in dag.children(u).iter().chain(dag.parents(u)) {
            if seen.insert(v.index()) {
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// Partitions the nodes of `dag` into weakly-connected components.
///
/// Components are returned sorted by their smallest node index, and the node
/// list inside each component is sorted by index, so the output is fully
/// deterministic.
pub fn weakly_connected_components(dag: &Dag) -> Vec<Vec<NodeId>> {
    let n = dag.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in dag.node_ids() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        comp[start.index()] = next;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for &v in dag.children(u).iter().chain(dag.parents(u)) {
                if comp[v.index()] == usize::MAX {
                    comp[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); next];
    for u in dag.node_ids() {
        out[comp[u.index()]].push(u);
    }
    out
}

/// The source side (`U`) and sink side (`V`) of a bipartite dag.
///
/// Nodes that have arcs are classified by their degree pattern; isolated
/// nodes (no arcs at all) are placed on the sink side, matching the
/// decomposition's treatment of isolated jobs as sinks of `G`.
///
/// Returns `None` if `dag` is not bipartite.
pub fn bipartite_split(dag: &Dag) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
    if !is_bipartite_dag(dag) {
        return None;
    }
    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for u in dag.node_ids() {
        if dag.out_degree(u) > 0 {
            sources.push(u);
        } else {
            sinks.push(u);
        }
    }
    Some((sources, sinks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_bipartite() {
        let d = Dag::from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        assert!(is_bipartite_dag(&d));
        let (src, snk) = bipartite_split(&d).unwrap();
        assert_eq!(src, vec![NodeId(0)]);
        assert_eq!(snk, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn chain_of_three_is_not_bipartite() {
        let d = Dag::from_arcs(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(!is_bipartite_dag(&d));
        assert!(bipartite_split(&d).is_none());
    }

    #[test]
    fn isolated_nodes_allowed_and_put_on_sink_side() {
        let d = Dag::from_arcs(3, &[(0, 1)]).unwrap();
        assert!(is_bipartite_dag(&d));
        let (src, snk) = bipartite_split(&d).unwrap();
        assert_eq!(src, vec![NodeId(0)]);
        assert_eq!(snk, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn connectivity() {
        let connected = Dag::from_arcs(4, &[(0, 1), (2, 1), (2, 3)]).unwrap();
        assert!(is_weakly_connected(&connected));
        let split = Dag::from_arcs(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!is_weakly_connected(&split));
        assert!(is_weakly_connected(&Dag::from_arcs(1, &[]).unwrap()));
        assert!(is_weakly_connected(&Dag::from_arcs(0, &[]).unwrap()));
    }

    #[test]
    fn components_are_sorted_and_complete() {
        let d = Dag::from_arcs(6, &[(0, 3), (4, 1), (2, 5)]).unwrap();
        let comps = weakly_connected_components(&d);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(3)]);
        assert_eq!(comps[1], vec![NodeId(1), NodeId(4)]);
        assert_eq!(comps[2], vec![NodeId(2), NodeId(5)]);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, d.num_nodes());
    }

    #[test]
    fn single_component_covers_all() {
        let d = Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let comps = weakly_connected_components(&d);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }
}
