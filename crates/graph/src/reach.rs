//! Reachability queries and transitive closure.
//!
//! Shortcut detection (Step 1 of the Divide phase) and several tests need to
//! answer "is `v` reachable from `u`?" — these helpers provide both one-off
//! BFS queries and a bitset-based full closure for moderate graph sizes.

use crate::bitset::FixedBitSet;
use crate::dag::{Dag, NodeId};
use crate::topo::topo_order;

/// All nodes reachable from `u` by directed paths of length ≥ 1
/// (`u` itself is excluded unless it lies on a cycle, which a [`Dag`]
/// forbids). Returned in increasing index order.
pub fn descendants(dag: &Dag, u: NodeId) -> Vec<NodeId> {
    let mut seen = FixedBitSet::new(dag.num_nodes());
    let mut stack: Vec<NodeId> = dag.children(u).to_vec();
    for &c in dag.children(u) {
        seen.insert(c.index());
    }
    while let Some(w) = stack.pop() {
        for &c in dag.children(w) {
            if seen.insert(c.index()) {
                stack.push(c);
            }
        }
    }
    seen.iter().map(|i| NodeId(i as u32)).collect()
}

/// All nodes that can reach `u` by directed paths of length ≥ 1.
pub fn ancestors(dag: &Dag, u: NodeId) -> Vec<NodeId> {
    let mut seen = FixedBitSet::new(dag.num_nodes());
    let mut stack: Vec<NodeId> = dag.parents(u).to_vec();
    for &p in dag.parents(u) {
        seen.insert(p.index());
    }
    while let Some(w) = stack.pop() {
        for &p in dag.parents(w) {
            if seen.insert(p.index()) {
                stack.push(p);
            }
        }
    }
    seen.iter().map(|i| NodeId(i as u32)).collect()
}

/// Whether a directed path of length ≥ 1 from `u` to `v` exists.
pub fn is_reachable(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return false;
    }
    let mut seen = FixedBitSet::new(dag.num_nodes());
    let mut stack = vec![u];
    while let Some(w) = stack.pop() {
        for &c in dag.children(w) {
            if c == v {
                return true;
            }
            if seen.insert(c.index()) {
                stack.push(c);
            }
        }
    }
    false
}

/// The full transitive closure as one bitset row per node: bit `v` of row
/// `u` is set iff `v` is reachable from `u` by a path of length ≥ 1.
///
/// Memory is `n² / 8` bytes — fine for the tens of thousands of jobs in the
/// paper's dags on small multiples of a gigabyte, but intended mainly for
/// verification and for small-to-medium graphs. Computed in reverse
/// topological order so each row is the union of child rows plus the child
/// bits themselves.
pub fn transitive_closure(dag: &Dag) -> Vec<FixedBitSet> {
    let n = dag.num_nodes();
    let mut rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
    for &u in topo_order(dag).iter().rev() {
        // Move the row out to appease the borrow checker while unioning
        // child rows in.
        let mut row = std::mem::replace(&mut rows[u.index()], FixedBitSet::new(0));
        for &c in dag.children(u) {
            row.insert(c.index());
            let child_row = &rows[c.index()];
            row.union_with(child_row);
        }
        rows[u.index()] = row;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_plus_tail() -> Dag {
        // 0 -> 1 -> 3 -> 4, 0 -> 2 -> 3
        Dag::from_arcs(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn descendants_of_root() {
        let d = diamond_plus_tail();
        let ds: Vec<u32> = descendants(&d, NodeId(0))
            .into_iter()
            .map(|u| u.0)
            .collect();
        assert_eq!(ds, vec![1, 2, 3, 4]);
        assert!(descendants(&d, NodeId(4)).is_empty());
    }

    #[test]
    fn ancestors_of_sink() {
        let d = diamond_plus_tail();
        let a: Vec<u32> = ancestors(&d, NodeId(4)).into_iter().map(|u| u.0).collect();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert!(ancestors(&d, NodeId(0)).is_empty());
    }

    #[test]
    fn reachability_queries() {
        let d = diamond_plus_tail();
        assert!(is_reachable(&d, NodeId(0), NodeId(4)));
        assert!(is_reachable(&d, NodeId(1), NodeId(4)));
        assert!(!is_reachable(&d, NodeId(1), NodeId(2)));
        assert!(!is_reachable(&d, NodeId(4), NodeId(0)));
        assert!(!is_reachable(&d, NodeId(2), NodeId(2)), "length >= 1 only");
    }

    #[test]
    fn closure_matches_pairwise_queries() {
        let d = diamond_plus_tail();
        let rows = transitive_closure(&d);
        for u in d.node_ids() {
            for v in d.node_ids() {
                assert_eq!(
                    rows[u.index()].contains(v.index()),
                    is_reachable(&d, u, v),
                    "closure mismatch at {u:?} -> {v:?}"
                );
            }
        }
    }

    #[test]
    fn closure_of_independent_nodes_is_empty() {
        let d = Dag::from_arcs(3, &[]).unwrap();
        for row in transitive_closure(&d) {
            assert!(row.is_empty());
        }
    }
}
