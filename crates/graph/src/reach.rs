//! Reachability queries and transitive closure.
//!
//! Shortcut detection (Step 1 of the Divide phase) and several tests need to
//! answer "is `v` reachable from `u`?" — these helpers provide both one-off
//! BFS queries and a bitset-based full closure for moderate graph sizes.

use crate::bitset::FixedBitSet;
use crate::dag::{Dag, NodeId};
use crate::scratch::GraphScratch;
use crate::topo::topo_order;

/// All nodes reachable from `u` by directed paths of length ≥ 1
/// (`u` itself is excluded unless it lies on a cycle, which a [`Dag`]
/// forbids). Returned in increasing index order.
pub fn descendants(dag: &Dag, u: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    descendants_into(dag, u, &mut GraphScratch::new(), &mut out);
    out
}

/// [`descendants`], but writing into `out` (cleared first) and borrowing
/// the visited set and worklist from `scratch`.
pub fn descendants_into(dag: &Dag, u: NodeId, scratch: &mut GraphScratch, out: &mut Vec<NodeId>) {
    reachable_into(dag, u, scratch, out, |dag, w| dag.children(w));
}

/// All nodes that can reach `u` by directed paths of length ≥ 1.
pub fn ancestors(dag: &Dag, u: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    ancestors_into(dag, u, &mut GraphScratch::new(), &mut out);
    out
}

/// [`ancestors`], but writing into `out` (cleared first) and borrowing the
/// visited set and worklist from `scratch`.
pub fn ancestors_into(dag: &Dag, u: NodeId, scratch: &mut GraphScratch, out: &mut Vec<NodeId>) {
    reachable_into(dag, u, scratch, out, |dag, w| dag.parents(w));
}

/// Shared scratch-borrowing closure walk behind the descendant/ancestor
/// queries; `step` selects the traversal direction.
fn reachable_into(
    dag: &Dag,
    u: NodeId,
    scratch: &mut GraphScratch,
    out: &mut Vec<NodeId>,
    step: impl Fn(&Dag, NodeId) -> &[NodeId],
) {
    out.clear();
    let seen_capacity = dag.num_nodes();
    let mut stack = std::mem::take(&mut scratch.stack);
    stack.clear();
    let seen = scratch.seen_mut(seen_capacity);
    for &c in step(dag, u) {
        if seen.insert(c.index()) {
            stack.push(c);
        }
    }
    while let Some(w) = stack.pop() {
        for &c in step(dag, w) {
            if seen.insert(c.index()) {
                stack.push(c);
            }
        }
    }
    scratch.stack = stack;
    // Bitset iteration yields increasing indices; clamp to this dag's node
    // range since the shared bitset may be larger than the graph.
    out.extend(
        scratch
            .seen
            .iter()
            .take_while(|&i| i < seen_capacity)
            .map(|i| NodeId(i as u32)),
    );
}

/// Whether a directed path of length ≥ 1 from `u` to `v` exists.
pub fn is_reachable(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return false;
    }
    let mut seen = FixedBitSet::new(dag.num_nodes());
    let mut stack = vec![u];
    while let Some(w) = stack.pop() {
        for &c in dag.children(w) {
            if c == v {
                return true;
            }
            if seen.insert(c.index()) {
                stack.push(c);
            }
        }
    }
    false
}

/// The full transitive closure as one bitset row per node: bit `v` of row
/// `u` is set iff `v` is reachable from `u` by a path of length ≥ 1.
///
/// Memory is `n² / 8` bytes — fine for the tens of thousands of jobs in the
/// paper's dags on small multiples of a gigabyte, but intended mainly for
/// verification and for small-to-medium graphs. Computed in reverse
/// topological order so each row is the union of child rows plus the child
/// bits themselves.
pub fn transitive_closure(dag: &Dag) -> Vec<FixedBitSet> {
    let n = dag.num_nodes();
    let mut rows: Vec<FixedBitSet> = (0..n).map(|_| FixedBitSet::new(n)).collect();
    for &u in topo_order(dag).iter().rev() {
        // Move the row out to appease the borrow checker while unioning
        // child rows in.
        let mut row = std::mem::replace(&mut rows[u.index()], FixedBitSet::new(0));
        for &c in dag.children(u) {
            row.insert(c.index());
            let child_row = &rows[c.index()];
            row.union_with(child_row);
        }
        rows[u.index()] = row;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_plus_tail() -> Dag {
        // 0 -> 1 -> 3 -> 4, 0 -> 2 -> 3
        Dag::from_arcs(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn descendants_of_root() {
        let d = diamond_plus_tail();
        let ds: Vec<u32> = descendants(&d, NodeId(0))
            .into_iter()
            .map(|u| u.0)
            .collect();
        assert_eq!(ds, vec![1, 2, 3, 4]);
        assert!(descendants(&d, NodeId(4)).is_empty());
    }

    #[test]
    fn ancestors_of_sink() {
        let d = diamond_plus_tail();
        let a: Vec<u32> = ancestors(&d, NodeId(4)).into_iter().map(|u| u.0).collect();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert!(ancestors(&d, NodeId(0)).is_empty());
    }

    #[test]
    fn reachability_queries() {
        let d = diamond_plus_tail();
        assert!(is_reachable(&d, NodeId(0), NodeId(4)));
        assert!(is_reachable(&d, NodeId(1), NodeId(4)));
        assert!(!is_reachable(&d, NodeId(1), NodeId(2)));
        assert!(!is_reachable(&d, NodeId(4), NodeId(0)));
        assert!(!is_reachable(&d, NodeId(2), NodeId(2)), "length >= 1 only");
    }

    #[test]
    fn into_variants_reuse_scratch_across_dags_of_different_sizes() {
        let mut scratch = GraphScratch::new();
        let mut out = Vec::new();
        let big = diamond_plus_tail();
        let small = Dag::from_arcs(2, &[(0, 1)]).unwrap();
        for d in [&big, &small, &big] {
            for u in d.node_ids() {
                descendants_into(d, u, &mut scratch, &mut out);
                assert_eq!(out, descendants(d, u));
                ancestors_into(d, u, &mut scratch, &mut out);
                assert_eq!(out, ancestors(d, u));
            }
        }
    }

    #[test]
    fn closure_matches_pairwise_queries() {
        let d = diamond_plus_tail();
        let rows = transitive_closure(&d);
        for u in d.node_ids() {
            for v in d.node_ids() {
                assert_eq!(
                    rows[u.index()].contains(v.index()),
                    is_reachable(&d, u, v),
                    "closure mismatch at {u:?} -> {v:?}"
                );
            }
        }
    }

    #[test]
    fn closure_of_independent_nodes_is_empty() {
        let d = Dag::from_arcs(3, &[]).unwrap();
        for row in transitive_closure(&d) {
            assert!(row.is_empty());
        }
    }
}
