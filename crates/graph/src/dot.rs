//! Graphviz DOT export — used to reproduce the paper's Fig. 5 (the AIRSN
//! dag drawn with its `prio`-assigned job priorities).

use crate::dag::{Dag, NodeId};
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the `digraph <name> { ... }` header.
    pub name: String,
    /// Draw arcs bottom-to-top as the paper does ("arcs are oriented
    /// upward"): sets `rankdir=BT`.
    pub arcs_upward: bool,
    /// Optional per-node priority annotation appended to labels and used to
    /// shade nodes (higher priority = darker). Indexed by node id.
    pub priorities: Option<Vec<u32>>,
    /// Nodes to highlight with a bold frame (e.g. the bottleneck job in
    /// Fig. 5).
    pub framed: Vec<NodeId>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "G".into(),
            arcs_upward: true,
            priorities: None,
            framed: Vec::new(),
        }
    }
}

/// Serializes `dag` to Graphviz DOT text.
pub fn to_dot(dag: &Dag, opts: &DotOptions) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", sanitize(&opts.name));
    if opts.arcs_upward {
        s.push_str("  rankdir=BT;\n");
    }
    s.push_str("  node [shape=circle, style=filled, fillcolor=white];\n");
    let max_prio = opts
        .priorities
        .as_ref()
        .and_then(|p| p.iter().copied().max())
        .unwrap_or(0);
    for u in dag.node_ids() {
        let mut attrs = String::new();
        let label = match &opts.priorities {
            Some(p) => format!("{}\\n[{}]", escape(dag.label(u)), p[u.index()]),
            None => escape(dag.label(u)),
        };
        let _ = write!(attrs, "label=\"{label}\"");
        if let Some(p) = &opts.priorities {
            // Shade from white (lowest priority) to mid-gray (highest).
            if max_prio > 0 {
                let frac = p[u.index()] as f64 / max_prio as f64;
                let level = (255.0 - 128.0 * frac).round() as u8;
                let _ = write!(attrs, ", fillcolor=\"#{level:02x}{level:02x}{level:02x}\"");
            }
        }
        if opts.framed.contains(&u) {
            attrs.push_str(", penwidth=3");
        }
        let _ = writeln!(s, "  n{} [{attrs}];", u.0);
    }
    for (u, v) in dag.arcs() {
        let _ = writeln!(s, "  n{} -> n{};", u.0, v.0);
    }
    s.push_str("}\n");
    s
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".into()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_structure() {
        let d = Dag::from_arcs(3, &[(0, 1), (0, 2)]).unwrap();
        let dot = to_dot(&d, &DotOptions::default());
        assert!(dot.starts_with("digraph G {"));
        assert!(dot.contains("rankdir=BT"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n0 -> n2;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn priorities_shade_and_annotate() {
        let d = Dag::from_arcs(2, &[(0, 1)]).unwrap();
        let opts = DotOptions {
            priorities: Some(vec![2, 1]),
            framed: vec![NodeId(0)],
            ..DotOptions::default()
        };
        let dot = to_dot(&d, &opts);
        assert!(dot.contains("[2]"), "priority shown in label");
        assert!(dot.contains("penwidth=3"), "framed node is bold");
        assert!(
            dot.contains("fillcolor=\"#7f7f7f\""),
            "max priority is darkest"
        );
    }

    #[test]
    fn labels_are_escaped_and_names_sanitized() {
        let mut b = crate::DagBuilder::new();
        b.add_node("we\"ird");
        let d = b.build().unwrap();
        let opts = DotOptions {
            name: "my graph!".into(),
            ..DotOptions::default()
        };
        let dot = to_dot(&d, &opts);
        assert!(dot.contains("digraph my_graph_ {"));
        assert!(dot.contains("we\\\"ird"));
    }
}
