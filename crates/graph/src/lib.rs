//! # prio-graph — DAG substrate for the `dagprio` workspace
//!
//! This crate provides the directed-acyclic-graph machinery that the
//! scheduling heuristic of Malewicz, Foster, Rosenberg and Wilde
//! (*"A Tool for Prioritizing DAGMan Jobs and Its Evaluation"*, 2006) is
//! built on:
//!
//! * a compact, immutable [`Dag`] representation with forward and backward
//!   adjacency, built through a validating [`DagBuilder`];
//! * deterministic topological sorting and linear-extension checking
//!   ([`topo`]);
//! * reachability queries, transitive closure and critical-path lengths
//!   ([`reach`]);
//! * *shortcut removal*, i.e. transitive reduction — Step 1 of the paper's
//!   Divide phase ([`reduction`]);
//! * bipartite-dag and connectivity analysis used by the decomposition —
//!   Step 2 of the Divide phase ([`bipartite`]);
//! * Graphviz DOT export used to reproduce the paper's Fig. 5 ([`dot`]).
//!
//! The crate is dependency-free and deterministic: iteration orders are a
//! function of node indices only, never of hash-map order.
//!
//! ## Quick example
//!
//! ```
//! use prio_graph::DagBuilder;
//!
//! let mut b = DagBuilder::new();
//! let a = b.add_node("a");
//! let bb = b.add_node("b");
//! let c = b.add_node("c");
//! b.add_arc(a, bb).unwrap();
//! b.add_arc(a, c).unwrap();
//! let dag = b.build().unwrap();
//! assert_eq!(dag.sources().collect::<Vec<_>>(), vec![a]);
//! assert_eq!(dag.sinks().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod bitset;
pub mod compose;
pub mod dag;
pub mod dot;
pub mod error;
pub mod labelhash;
pub mod reach;
pub mod reduction;
pub mod scratch;
pub mod topo;

pub use bitset::FixedBitSet;
pub use dag::{Dag, DagBuilder, Label, NodeId, SubgraphMap};
pub use error::GraphError;
pub use labelhash::{NameHashBuild, NameHasher};
pub use scratch::{GraphScratch, ScratchArena, SubgraphScratch};
