//! The label/job-name hash shared across the workspace.
//!
//! Moved here from `prio-ir` (which re-exports it) so the graph layer's
//! own label maps — [`crate::DagBuilder`]'s label → id index — can use it
//! without a dependency cycle: every crate that handles job names already
//! depends on `prio-graph`.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative hash over 8-byte chunks, chosen over the default SipHash
/// because name tokens are short and workflow files are trusted local input
/// (no hash-flooding concern) — the keyed SipHash setup cost alone outweighs
/// hashing a ~15-byte name, and byte-serial hashes (FNV) pay a dependent
/// multiply per byte.
pub struct NameHasher {
    h: u64,
    /// Total bytes hashed, folded into [`NameHasher::finish`]. Without it
    /// the ≤7-byte tail word is length-ambiguous: the tail packs bytes
    /// big-endian into a `u64` with no length marker, so `"a"` and
    /// `"\0a"` packed to the same word and collided for *every* seed — a
    /// degenerate family surfaced by the 10⁷-name keyspace audit. Mixing
    /// the length restores injectivity of the final round for all inputs
    /// up to 8 bytes.
    len: u64,
}

const CHUNK_SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for NameHasher {
    fn finish(&self) -> u64 {
        // The multiply pushes entropy toward the high bits but the table
        // indexes buckets by the low bits — sequential names like `job17`,
        // `job18` would cluster into long probe chains without a final
        // avalanche (splitmix64-style).
        let mut h = self.h ^ self.len;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            h = (h.rotate_left(5) ^ v).wrapping_mul(CHUNK_SEED);
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        h = (h.rotate_left(5) ^ tail).wrapping_mul(CHUNK_SEED);
        self.h = h;
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }
}

/// [`BuildHasher`] for [`NameHasher`]; usable as the hasher of any map or
/// set keyed by job names or labels.
#[derive(Debug, Default, Clone)]
pub struct NameHashBuild;

impl BuildHasher for NameHashBuild {
    type Hasher = NameHasher;

    fn build_hasher(&self) -> NameHasher {
        NameHasher {
            h: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> u64 {
        let mut hasher = NameHashBuild.build_hasher();
        hasher.write(s.as_bytes());
        hasher.finish()
    }

    #[test]
    fn low_bits_spread_for_sequential_names() {
        let mut low = std::collections::HashSet::new();
        for i in 0..64 {
            low.insert(h(&format!("job{i}")) & 0xfff);
        }
        assert!(low.len() > 48, "low-bit clustering: {}", low.len());
    }

    #[test]
    fn nul_padded_tails_no_longer_collide() {
        // Regression for the tail length ambiguity: these packed to the
        // same tail word before the length was folded into `finish`.
        assert_ne!(h("a"), h("\0a"));
        assert_ne!(h("\0\0j"), h("\0j"));
        assert_ne!(h(""), h("\0"));
    }
}
