//! The core immutable [`Dag`] type and its validating [`DagBuilder`].
//!
//! In the paper's model each node is a *job* and each arc `u -> v` is an
//! inter-job dependency: `v` cannot start before `u` has completed and
//! returned its results. `u` is a *parent* of `v`, and `v` a *child* of `u`.

use crate::error::GraphError;
use std::collections::HashMap;
use std::fmt;

/// A node (job) identifier: a dense index into a [`Dag`].
///
/// `NodeId`s are only meaningful relative to the `Dag` that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable directed acyclic graph with labelled nodes.
///
/// Both forward (`children`) and backward (`parents`) adjacency lists are
/// stored, each sorted by node index, so all traversals are deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    labels: Vec<String>,
    children: Vec<Vec<NodeId>>,
    parents: Vec<Vec<NodeId>>,
    num_arcs: usize,
}

impl Dag {
    /// Number of nodes (jobs).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of arcs (dependencies).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over all node identifiers in index order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + Clone {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The children of `u` (sorted by index).
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.children[u.index()]
    }

    /// The parents of `u` (sorted by index).
    #[inline]
    pub fn parents(&self, u: NodeId) -> &[NodeId] {
        &self.parents[u.index()]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.children[u.index()].len()
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.parents[u.index()].len()
    }

    /// Whether `u` has no parents.
    #[inline]
    pub fn is_source(&self, u: NodeId) -> bool {
        self.parents[u.index()].is_empty()
    }

    /// Whether `u` has no children.
    #[inline]
    pub fn is_sink(&self, u: NodeId) -> bool {
        self.children[u.index()].is_empty()
    }

    /// All sources (nodes with no parents), in index order.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&u| self.is_source(u))
    }

    /// All sinks (nodes with no children), in index order.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&u| self.is_sink(u))
    }

    /// The label (job name) of `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> &str {
        &self.labels[u.index()]
    }

    /// Finds the node with the given label, if any (linear scan; use a
    /// [`DagBuilder`]'s handle instead when building).
    pub fn find(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| NodeId(i as u32))
    }

    /// Whether the arc `u -> v` is present.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.children[u.index()].binary_search(&v).is_ok()
    }

    /// Iterates over all arcs `(u, v)` in lexicographic order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |u| self.children(u).iter().map(move |&v| (u, v)))
    }

    /// Builds the subgraph induced by `nodes`, together with the index maps
    /// between the subgraph and this graph.
    ///
    /// Nodes are renumbered densely in the order given by `nodes` (duplicates
    /// are ignored after the first occurrence). Arcs are kept iff both
    /// endpoints are included.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Dag, SubgraphMap) {
        // The map is kept sparse (hash map keyed by original id): a dense
        // vector per subgraph would cost O(|G|) memory for every component
        // of a decomposition — tens of gigabytes on the 48k-job SDSS dag.
        let mut to_sub: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
        let mut to_super: Vec<NodeId> = Vec::with_capacity(nodes.len());
        for &u in nodes {
            if let std::collections::hash_map::Entry::Vacant(e) = to_sub.entry(u) {
                e.insert(NodeId(to_super.len() as u32));
                to_super.push(u);
            }
        }
        let n = to_super.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut num_arcs = 0;
        for (si, &u) in to_super.iter().enumerate() {
            for &v in self.children(u) {
                if let Some(&sv) = to_sub.get(&v) {
                    children[si].push(sv);
                    parents[sv.index()].push(NodeId(si as u32));
                    num_arcs += 1;
                }
            }
        }
        for list in children.iter_mut().chain(parents.iter_mut()) {
            list.sort_unstable();
        }
        let labels = to_super
            .iter()
            .map(|&u| self.labels[u.index()].clone())
            .collect();
        (
            Dag {
                labels,
                children,
                parents,
                num_arcs,
            },
            SubgraphMap { to_sub, to_super },
        )
    }

    /// Returns the arc-reversed DAG (every `u -> v` becomes `v -> u`).
    ///
    /// This is how the theory derives M-dags from W-dags ("duals").
    pub fn reversed(&self) -> Dag {
        Dag {
            labels: self.labels.clone(),
            children: self.parents.clone(),
            parents: self.children.clone(),
            num_arcs: self.num_arcs,
        }
    }

    /// Convenience constructor from labelled nodes and index arcs.
    ///
    /// `n` nodes are created with labels `"j0" .. "j{n-1}"`.
    pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Result<Dag, GraphError> {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.add_node(format!("j{i}"));
        }
        for &(u, v) in arcs {
            b.add_arc(NodeId(u), NodeId(v))?;
        }
        b.build()
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dag({} nodes, {} arcs)", self.num_nodes(), self.num_arcs)?;
        for u in self.node_ids() {
            if !self.children(u).is_empty() {
                writeln!(f, "  {:?} -> {:?}", u, self.children(u))?;
            }
        }
        Ok(())
    }
}

/// Index maps produced by [`Dag::induced_subgraph`].
///
/// Memory is proportional to the subgraph, not the original graph, so a
/// decomposition may hold one map per component without quadratic blowup.
#[derive(Debug, Clone)]
pub struct SubgraphMap {
    to_sub: HashMap<NodeId, NodeId>,
    to_super: Vec<NodeId>,
}

impl SubgraphMap {
    /// Maps a node of the original graph to the subgraph, if included.
    pub fn to_sub(&self, u: NodeId) -> Option<NodeId> {
        self.to_sub.get(&u).copied()
    }

    /// Maps a subgraph node back to the original graph.
    pub fn to_super(&self, s: NodeId) -> NodeId {
        self.to_super[s.index()]
    }

    /// The original-graph identifiers of all subgraph nodes, in subgraph
    /// index order.
    pub fn super_nodes(&self) -> &[NodeId] {
        &self.to_super
    }
}

/// An incremental, validating builder for [`Dag`].
///
/// Nodes are created with [`DagBuilder::add_node`]; duplicate arcs are
/// silently deduplicated; self-loops are rejected eagerly and cycles at
/// [`DagBuilder::build`] time.
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    labels: Vec<String>,
    by_label: HashMap<String, NodeId>,
    arcs: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `nodes` nodes and `arcs` arcs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        DagBuilder {
            labels: Vec::with_capacity(nodes),
            by_label: HashMap::with_capacity(nodes),
            arcs: Vec::with_capacity(arcs),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Adds a node with the given label and returns its identifier.
    ///
    /// Labels are not required to be unique here (generated workloads use
    /// unique names; uniqueness can be enforced with
    /// [`DagBuilder::add_unique_node`]).
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        let label = label.into();
        self.by_label.entry(label.clone()).or_insert(id);
        self.labels.push(label);
        id
    }

    /// Adds a node whose label must be new, erroring on duplicates.
    pub fn add_unique_node(&mut self, label: impl Into<String>) -> Result<NodeId, GraphError> {
        let label = label.into();
        if self.by_label.contains_key(&label) {
            return Err(GraphError::DuplicateLabel { label });
        }
        Ok(self.add_node(label))
    }

    /// Returns the node previously added with `label` (first occurrence), or
    /// adds a fresh one.
    pub fn node_for_label(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.by_label.get(label) {
            id
        } else {
            self.add_node(label)
        }
    }

    /// Looks up a label without inserting.
    pub fn get(&self, label: &str) -> Option<NodeId> {
        self.by_label.get(label).copied()
    }

    /// Adds the arc `u -> v`. Duplicates are deduplicated at build time.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let len = self.labels.len() as u32;
        for w in [u, v] {
            if w.0 >= len {
                return Err(GraphError::InvalidNode { index: w.0, len });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { index: u.0 });
        }
        self.arcs.push((u, v));
        Ok(())
    }

    /// Finalizes the graph, verifying acyclicity.
    pub fn build(self) -> Result<Dag, GraphError> {
        let n = self.labels.len();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut arcs = self.arcs;
        arcs.sort_unstable();
        arcs.dedup();
        let num_arcs = arcs.len();
        for (u, v) in arcs {
            children[u.index()].push(v);
            parents[v.index()].push(u);
        }
        for list in parents.iter_mut() {
            list.sort_unstable();
        }
        // Kahn's algorithm purely to detect cycles; the sort itself lives in
        // `topo`.
        let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut stack: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|u| indeg[u.index()] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &children[u.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen != n {
            let on_cycle = indeg.iter().position(|&d| d > 0).expect("cycle node") as u32;
            return Err(GraphError::Cycle { on_cycle });
        }
        Ok(Dag {
            labels: self.labels,
            children,
            parents,
            num_arcs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a -> b, a -> c, b -> d, c -> d
        Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let d = diamond();
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_arcs(), 4);
        assert_eq!(d.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.parents(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.sources().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(d.sinks().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert!(d.has_arc(NodeId(0), NodeId(1)));
        assert!(!d.has_arc(NodeId(1), NodeId(0)));
        assert_eq!(d.out_degree(NodeId(0)), 2);
        assert_eq!(d.in_degree(NodeId(3)), 2);
        assert_eq!(d.label(NodeId(2)), "j2");
        assert_eq!(d.find("j2"), Some(NodeId(2)));
        assert_eq!(d.find("nope"), None);
    }

    #[test]
    fn arcs_iterator_is_lexicographic() {
        let d = diamond();
        let arcs: Vec<_> = d.arcs().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn duplicate_arcs_are_deduped() {
        let d = Dag::from_arcs(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(d.num_arcs(), 1);
    }

    #[test]
    fn cycle_detection() {
        let err = Dag::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::Cycle { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_node("a");
        assert!(matches!(b.add_arc(a, a), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn invalid_node_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_node("a");
        assert!(matches!(
            b.add_arc(a, NodeId(5)),
            Err(GraphError::InvalidNode { index: 5, .. })
        ));
    }

    #[test]
    fn unique_labels_enforced() {
        let mut b = DagBuilder::new();
        b.add_unique_node("x").unwrap();
        assert!(matches!(
            b.add_unique_node("x"),
            Err(GraphError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn node_for_label_reuses() {
        let mut b = DagBuilder::new();
        let x = b.node_for_label("x");
        let y = b.node_for_label("y");
        assert_eq!(b.node_for_label("x"), x);
        assert_ne!(x, y);
        assert_eq!(b.get("y"), Some(y));
        assert_eq!(b.get("z"), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_arcs() {
        let d = diamond();
        let (sub, map) = d.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.num_nodes(), 3);
        // a->b and b->d survive; a->c->d does not.
        assert_eq!(sub.num_arcs(), 2);
        assert_eq!(map.to_super(NodeId(0)), NodeId(0));
        assert_eq!(map.to_sub(NodeId(3)), Some(NodeId(2)));
        assert_eq!(map.to_sub(NodeId(2)), None);
        assert_eq!(sub.label(NodeId(2)), "j3");
        assert_eq!(map.super_nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let d = diamond();
        let (sub, _) = d.induced_subgraph(&[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_arcs(), 0);
    }

    #[test]
    fn reversed_swaps_sources_and_sinks() {
        let d = diamond();
        let r = d.reversed();
        assert_eq!(r.sources().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(r.sinks().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(r.num_arcs(), d.num_arcs());
        assert!(r.has_arc(NodeId(3), NodeId(1)));
    }

    #[test]
    fn empty_dag() {
        let d = DagBuilder::new().build().unwrap();
        assert!(d.is_empty());
        assert_eq!(d.sources().count(), 0);
    }
}
