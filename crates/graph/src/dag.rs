//! The core immutable [`Dag`] type and its validating [`DagBuilder`].
//!
//! In the paper's model each node is a *job* and each arc `u -> v` is an
//! inter-job dependency: `v` cannot start before `u` has completed and
//! returned its results. `u` is a *parent* of `v`, and `v` a *child* of `u`.
//!
//! Adjacency is stored in compressed-sparse-row (CSR) form: one flat
//! neighbour array per direction, indexed by an `n + 1`-entry offset table,
//! so the neighbours of node `u` are the contiguous slice
//! `adj[off[u] .. off[u + 1]]`. Compared to a `Vec<Vec<NodeId>>` this costs
//! zero per-node heap allocations, keeps all neighbour lists of a traversal
//! in a single cache-friendly array, and makes `children`/`parents` a pair
//! of index loads. Offsets are `u32` (arc counts are bounded by
//! `u32::MAX`), halving the offset tables' footprint on 64-bit targets.

use crate::error::GraphError;
use crate::labelhash::NameHashBuild;
use crate::scratch::SubgraphScratch;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A node label (job name).
///
/// Reference-counted so that subgraph induction, arc filtering and
/// reversal — all of which preserve labels — bump a refcount instead of
/// copying the string. Frontends that intern job names (`prio-ir`'s
/// `NameInterner` produces the same `Arc<str>` type) flow their interned
/// names into the graph without any copy.
pub type Label = Arc<str>;

/// Arc-chunk floor below which the parallel CSR/sort paths fall back to
/// the serial implementation: spawning scoped threads for a few thousand
/// arcs costs more than the passes themselves.
const MIN_PARALLEL_ARCS: usize = 1 << 16;

/// A node (job) identifier: a dense index into a [`Dag`].
///
/// `NodeId`s are only meaningful relative to the `Dag` that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An immutable directed acyclic graph with labelled nodes.
///
/// Both forward (`children`) and backward (`parents`) adjacency are stored
/// in CSR form, each neighbour list sorted by node index, so all traversals
/// are deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    labels: Vec<Label>,
    /// `n + 1` offsets into `child_adj`; children of `u` are
    /// `child_adj[child_off[u] .. child_off[u + 1]]`.
    child_off: Box<[u32]>,
    child_adj: Box<[NodeId]>,
    /// `n + 1` offsets into `parent_adj`, same layout as `child_off`.
    parent_off: Box<[u32]>,
    parent_adj: Box<[NodeId]>,
}

impl Dag {
    /// Builds the CSR representation from a lexicographically sorted,
    /// deduplicated arc list whose endpoints are all `< labels.len()`.
    ///
    /// Two counting passes produce both directions without ever allocating
    /// a per-node list: the sorted arc targets *are* the child array, and
    /// filling the transpose in lexicographic arc order keeps every parent
    /// list sorted by source index. Acyclicity is **not** checked here.
    fn from_sorted_unique_arcs(labels: Vec<Label>, arcs: &[(NodeId, NodeId)]) -> Dag {
        let n = labels.len();
        assert!(
            arcs.len() <= u32::MAX as usize,
            "arc count {} exceeds the u32 offset range",
            arcs.len()
        );
        prio_obs::counter("graph.build.serial_builds").add(1);
        let mut child_off = vec![0u32; n + 1];
        let mut parent_off = vec![0u32; n + 1];
        for &(u, v) in arcs {
            child_off[u.index() + 1] += 1;
            parent_off[v.index() + 1] += 1;
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
            parent_off[i + 1] += parent_off[i];
        }
        let child_adj: Box<[NodeId]> = arcs.iter().map(|&(_, v)| v).collect();
        let mut parent_adj: Vec<NodeId> = vec![NodeId(0); arcs.len()];
        let mut cursor: Vec<u32> = parent_off[..n].to_vec();
        for &(u, v) in arcs {
            let slot = &mut cursor[v.index()];
            parent_adj[*slot as usize] = u;
            *slot += 1;
        }
        Dag {
            labels,
            child_off: child_off.into_boxed_slice(),
            child_adj,
            parent_off: parent_off.into_boxed_slice(),
            parent_adj: parent_adj.into_boxed_slice(),
        }
    }

    /// [`Dag::from_sorted_unique_arcs`] built across `threads` scoped
    /// worker threads; bit-identical to the serial build.
    ///
    /// * `child_off` — each thread owns a contiguous source-node range and
    ///   counts its arcs by scanning the matching arc subrange (found by
    ///   `partition_point` on the sorted list), then a serial prefix sum
    ///   merges the ranges.
    /// * `child_adj` — the sorted arc targets *are* the child array, so
    ///   each thread copies a disjoint arc chunk.
    /// * `parent_off`/`parent_adj` — per-thread counting passes over
    ///   contiguous arc chunks, merged by prefix sum into per-`(thread, v)`
    ///   write cursors: earlier chunks get earlier slots and chunks scan in
    ///   lexicographic order, so every parent list comes out sorted by
    ///   source exactly as in the serial transpose fill.
    fn from_sorted_unique_arcs_par(
        labels: Vec<Label>,
        arcs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Dag {
        let n = labels.len();
        let m = arcs.len();
        if threads <= 1 || m < MIN_PARALLEL_ARCS {
            return Dag::from_sorted_unique_arcs(labels, arcs);
        }
        assert!(
            m <= u32::MAX as usize,
            "arc count {m} exceeds the u32 offset range"
        );
        prio_obs::counter("graph.build.parallel_builds").add(1);
        let t = threads.min(m);
        // Contiguous arc chunks, one per thread.
        let chunk_bounds: Vec<(usize, usize)> =
            (0..t).map(|i| (m * i / t, m * (i + 1) / t)).collect();

        // child_off: per-source-range counting in parallel.
        let mut child_off = vec![0u32; n + 1];
        {
            let node_ranges: Vec<(usize, usize)> =
                (0..t).map(|i| (n * i / t, n * (i + 1) / t)).collect();
            let mut slices: Vec<&mut [u32]> = Vec::with_capacity(t);
            let mut rest = &mut child_off[1..];
            for &(lo, hi) in &node_ranges {
                let (head, tail) = rest.split_at_mut(hi - lo);
                slices.push(head);
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (slice, &(lo, hi)) in slices.into_iter().zip(&node_ranges) {
                    scope.spawn(move || {
                        let start = arcs.partition_point(|&(u, _)| u.index() < lo);
                        let end = arcs.partition_point(|&(u, _)| u.index() < hi);
                        for &(u, _) in &arcs[start..end] {
                            slice[u.index() - lo] += 1;
                        }
                    });
                }
            });
        }
        for i in 0..n {
            child_off[i + 1] += child_off[i];
        }

        // child_adj: disjoint chunk copies.
        let mut child_adj: Vec<NodeId> = vec![NodeId(0); m];
        {
            let mut slices: Vec<&mut [NodeId]> = Vec::with_capacity(t);
            let mut rest = child_adj.as_mut_slice();
            for &(lo, hi) in &chunk_bounds {
                let (head, tail) = rest.split_at_mut(hi - lo);
                slices.push(head);
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (slice, &(lo, hi)) in slices.into_iter().zip(&chunk_bounds) {
                    scope.spawn(move || {
                        for (dst, &(_, v)) in slice.iter_mut().zip(&arcs[lo..hi]) {
                            *dst = v;
                        }
                    });
                }
            });
        }

        // parent side, sharded by *target* range: each thread owns the
        // nodes `v` in a contiguous range and therefore a disjoint,
        // contiguous slice of the transpose arrays (`split_at_mut`, no
        // locks). A thread scans the whole arc list but touches only its
        // own targets; scanning in lexicographic order makes every parent
        // list come out sorted by source exactly as in the serial fill.
        // Total reads are `threads × m` but the passes run concurrently,
        // so the wall time is one scan plus the serial prefix sum.
        let node_ranges: Vec<(usize, usize)> =
            (0..t).map(|i| (n * i / t, n * (i + 1) / t)).collect();
        let mut parent_cnt = vec![0u32; n];
        {
            let mut slices: Vec<&mut [u32]> = Vec::with_capacity(t);
            let mut rest = parent_cnt.as_mut_slice();
            for &(lo, hi) in &node_ranges {
                let (head, tail) = rest.split_at_mut(hi - lo);
                slices.push(head);
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (slice, &(lo, hi)) in slices.into_iter().zip(&node_ranges) {
                    scope.spawn(move || {
                        for &(_, v) in arcs {
                            let vi = v.index();
                            if vi >= lo && vi < hi {
                                slice[vi - lo] += 1;
                            }
                        }
                    });
                }
            });
        }
        let mut parent_off = vec![0u32; n + 1];
        for v in 0..n {
            parent_off[v + 1] = parent_off[v] + parent_cnt[v];
        }
        let mut parent_adj: Vec<NodeId> = vec![NodeId(0); m];
        {
            let mut slices: Vec<&mut [NodeId]> = Vec::with_capacity(t);
            let mut rest = parent_adj.as_mut_slice();
            for &(lo, hi) in &node_ranges {
                let start = parent_off[lo] as usize;
                let end = parent_off[hi] as usize;
                let (head, tail) = rest.split_at_mut(end - start);
                slices.push(head);
                rest = tail;
            }
            std::thread::scope(|scope| {
                for (slice, &(lo, hi)) in slices.into_iter().zip(&node_ranges) {
                    let base = parent_off[lo];
                    let off = &parent_off;
                    scope.spawn(move || {
                        let mut cursor: Vec<u32> = off[lo..hi].iter().map(|&o| o - base).collect();
                        for &(u, v) in arcs {
                            let vi = v.index();
                            if vi >= lo && vi < hi {
                                let slot = &mut cursor[vi - lo];
                                slice[*slot as usize] = u;
                                *slot += 1;
                            }
                        }
                    });
                }
            });
        }

        Dag {
            labels,
            child_off: child_off.into_boxed_slice(),
            child_adj: child_adj.into_boxed_slice(),
            parent_off: parent_off.into_boxed_slice(),
            parent_adj: parent_adj.into_boxed_slice(),
        }
    }

    /// Builds a dag from a lexicographically sorted, duplicate-free arc
    /// list whose endpoints are all `< labels.len()`, **without** checking
    /// acyclicity.
    ///
    /// The caller must hold an acyclicity witness (the decomposition's
    /// detach order, an arc-filtered copy of an existing dag, …): a cyclic
    /// input produces a structurally valid `Dag` whose traversals violate
    /// the DAG contract downstream. Sortedness and uniqueness are
    /// `debug_assert`ed; `threads > 1` uses the parallel CSR build, which
    /// is bit-identical to the serial one.
    pub fn from_sorted_arcs_unchecked(
        labels: Vec<Label>,
        arcs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Dag {
        debug_assert!(
            arcs.windows(2).all(|w| w[0] < w[1]),
            "arc list must be sorted and duplicate-free"
        );
        debug_assert!(arcs
            .iter()
            .all(|&(u, v)| u.index() < labels.len() && v.index() < labels.len()));
        Dag::from_sorted_unique_arcs_par(labels, arcs, threads)
    }

    /// Validating bulk constructor: sorts and deduplicates `arcs`, checks
    /// endpoints, self-loops and acyclicity, and builds the CSR arrays —
    /// the bulk equivalent of a [`DagBuilder`] loop without the per-arc
    /// bounds chatter or the label map.
    ///
    /// `threads > 1` parallelizes the arc sort (chunk sorts + pairwise
    /// merges) and the CSR fill; the result is bit-identical to the
    /// serial path for every thread count.
    pub fn assemble(
        labels: Vec<Label>,
        mut arcs: Vec<(NodeId, NodeId)>,
        threads: usize,
    ) -> Result<Dag, GraphError> {
        let len = labels.len() as u32;
        for &(u, v) in &arcs {
            for w in [u, v] {
                if w.0 >= len {
                    return Err(GraphError::InvalidNode { index: w.0, len });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop { index: u.0 });
            }
        }
        par_sort_arcs(&mut arcs, threads);
        arcs.dedup();
        let dag = Dag::from_sorted_unique_arcs_par(labels, &arcs, threads);
        kahn_acyclicity_check(&dag)?;
        Ok(dag)
    }

    /// Number of nodes (jobs).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of arcs (dependencies).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.child_adj.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over all node identifiers in index order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + Clone {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The children of `u` (sorted by index).
    #[inline]
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.child_adj[self.child_off[i] as usize..self.child_off[i + 1] as usize]
    }

    /// The parents of `u` (sorted by index).
    #[inline]
    pub fn parents(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.parent_adj[self.parent_off[i] as usize..self.parent_off[i + 1] as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.child_off[i + 1] - self.child_off[i]) as usize
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.parent_off[i + 1] - self.parent_off[i]) as usize
    }

    /// Whether `u` has no parents.
    #[inline]
    pub fn is_source(&self, u: NodeId) -> bool {
        self.in_degree(u) == 0
    }

    /// Whether `u` has no children.
    #[inline]
    pub fn is_sink(&self, u: NodeId) -> bool {
        self.out_degree(u) == 0
    }

    /// All sources (nodes with no parents), in index order.
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&u| self.is_source(u))
    }

    /// All sinks (nodes with no children), in index order.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&u| self.is_sink(u))
    }

    /// The label (job name) of `u`.
    #[inline]
    pub fn label(&self, u: NodeId) -> &str {
        &self.labels[u.index()]
    }

    /// The shared (reference-counted) label of `u`; cloning the returned
    /// handle bumps a refcount instead of copying the string.
    #[inline]
    pub fn label_arc(&self, u: NodeId) -> &Label {
        &self.labels[u.index()]
    }

    /// Finds the node with the given label, if any (linear scan; use a
    /// [`DagBuilder`]'s handle instead when building).
    pub fn find(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| &**l == label)
            .map(|i| NodeId(i as u32))
    }

    /// Whether the arc `u -> v` is present.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.children(u).binary_search(&v).is_ok()
    }

    /// Iterates over all arcs `(u, v)` in lexicographic order.
    pub fn arcs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.node_ids()
            .flat_map(move |u| self.children(u).iter().map(move |&v| (u, v)))
    }

    /// Builds the subgraph induced by `nodes`, together with the index maps
    /// between the subgraph and this graph.
    ///
    /// Nodes are renumbered densely in the order given by `nodes` (duplicates
    /// are ignored after the first occurrence). Arcs are kept iff both
    /// endpoints are included.
    /// [`Dag::induced_subgraph`] for **strictly ascending** node lists,
    /// with the O(|G|) membership and renumbering tables borrowed from
    /// `scratch` instead of binary-searching `nodes` once per arc.
    /// Produces exactly the same `(Dag, SubgraphMap)` as
    /// [`Dag::induced_subgraph`] on the same input; callers that
    /// materialize many subgraphs of one dag (the decomposition) reuse one
    /// scratch and save the dominant share of the per-part cost.
    pub fn induced_subgraph_in(
        &self,
        nodes: &[NodeId],
        scratch: &mut SubgraphScratch,
    ) -> (Dag, SubgraphMap) {
        debug_assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "induced_subgraph_in requires strictly ascending nodes"
        );
        let stamp = scratch.next_stamp(self.num_nodes());
        for (i, &u) in nodes.iter().enumerate() {
            scratch.stamp_of[u.index()] = stamp;
            scratch.local_id[u.index()] = i as u32;
        }
        let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut labels: Vec<Label> = Vec::with_capacity(nodes.len());
        for (i, &u) in nodes.iter().enumerate() {
            labels.push(self.labels[u.index()].clone());
            for &v in self.children(u) {
                if scratch.stamp_of[v.index()] == stamp {
                    // Ascending `nodes` makes the renumbering monotone and
                    // children are stored sorted, so arcs come out in
                    // lexicographic order — no sort needed.
                    arcs.push((NodeId(i as u32), NodeId(scratch.local_id[v.index()])));
                }
            }
        }
        (
            Dag::from_sorted_unique_arcs(labels, &arcs),
            SubgraphMap {
                to_super: nodes.to_vec(),
                rev: None,
            },
        )
    }

    /// The subgraph induced on `nodes` (duplicates ignored, first
    /// occurrence wins) plus the local ↔ global id mapping. Arcs between
    /// two listed nodes are kept; everything else is dropped.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Dag, SubgraphMap) {
        // The map is kept proportional to the subgraph, never O(|G|): a
        // dense vector per subgraph would cost O(|G|) memory for every
        // component of a decomposition — tens of gigabytes on the 48k-job
        // SDSS dag. Reverse lookups go through binary search instead of a
        // hash map: the decomposition materializes every component through
        // this function, and the old SipHash map plus per-node label
        // copies dominated its profile at the 10⁶-job tier.
        let sorted_strict = nodes.windows(2).all(|w| w[0] < w[1]);
        if sorted_strict {
            // Fast path (every decomposition part takes it): a strictly
            // ascending node list makes the renumbering monotone, so arcs
            // are emitted in lexicographic order already — no sort — and
            // `to_super` itself is the sorted reverse-lookup index.
            let to_super: Vec<NodeId> = nodes.to_vec();
            let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
            for (si, &u) in to_super.iter().enumerate() {
                for &v in self.children(u) {
                    if let Ok(sv) = to_super.binary_search(&v) {
                        arcs.push((NodeId(si as u32), NodeId(sv as u32)));
                    }
                }
            }
            let labels = to_super
                .iter()
                .map(|&u| self.labels[u.index()].clone())
                .collect();
            return (
                Dag::from_sorted_unique_arcs(labels, &arcs),
                SubgraphMap {
                    to_super,
                    rev: None,
                },
            );
        }

        // General path: dedup by first occurrence, then binary-search a
        // sorted (super, sub) index for the reverse direction.
        let mut pairs: Vec<(NodeId, u32)> = nodes
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, i as u32))
            .collect();
        pairs.sort_unstable();
        pairs.dedup_by_key(|p| p.0); // keeps the smallest original index
                                     // The surviving original positions, in ascending order, are the
                                     // first occurrences in input order: re-rank them to get sub ids.
        let mut by_pos: Vec<(u32, NodeId)> = pairs.iter().map(|&(u, i)| (i, u)).collect();
        by_pos.sort_unstable();
        let to_super: Vec<NodeId> = by_pos.iter().map(|&(_, u)| u).collect();
        let mut rev: Vec<(NodeId, NodeId)> = by_pos
            .iter()
            .enumerate()
            .map(|(sub, &(_, u))| (u, NodeId(sub as u32)))
            .collect();
        rev.sort_unstable();
        let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
        for (si, &u) in to_super.iter().enumerate() {
            for &v in self.children(u) {
                if let Ok(i) = rev.binary_search_by_key(&v, |p| p.0) {
                    arcs.push((NodeId(si as u32), rev[i].1));
                }
            }
        }
        // Sub ids are not monotone in super ids, so the pair list needs one
        // sort before the CSR build (it is already duplicate-free).
        arcs.sort_unstable();
        let labels = to_super
            .iter()
            .map(|&u| self.labels[u.index()].clone())
            .collect();
        (
            Dag::from_sorted_unique_arcs(labels, &arcs),
            SubgraphMap {
                to_super,
                rev: Some(rev.into_boxed_slice()),
            },
        )
    }

    /// Returns a copy of this dag keeping exactly the arcs for which `keep`
    /// returns `true` (node set unchanged).
    ///
    /// Removing arcs from a DAG cannot create a cycle, so no re-validation
    /// happens — this is the cheap path behind shortcut removal.
    pub fn filter_arcs(&self, mut keep: impl FnMut(NodeId, NodeId) -> bool) -> Dag {
        let arcs: Vec<(NodeId, NodeId)> = self.arcs().filter(|&(u, v)| keep(u, v)).collect();
        Dag::from_sorted_unique_arcs(self.labels.clone(), &arcs)
    }

    /// Returns the arc-reversed DAG (every `u -> v` becomes `v -> u`).
    ///
    /// This is how the theory derives M-dags from W-dags ("duals"). With
    /// both CSR directions stored, this is a plain swap of the two arrays.
    pub fn reversed(&self) -> Dag {
        Dag {
            labels: self.labels.clone(),
            child_off: self.parent_off.clone(),
            child_adj: self.parent_adj.clone(),
            parent_off: self.child_off.clone(),
            parent_adj: self.child_adj.clone(),
        }
    }

    /// Convenience constructor from labelled nodes and index arcs.
    ///
    /// `n` nodes are created with labels `"j0" .. "j{n-1}"`.
    pub fn from_arcs(n: usize, arcs: &[(u32, u32)]) -> Result<Dag, GraphError> {
        let mut b = DagBuilder::new();
        for i in 0..n {
            b.add_node(format!("j{i}"));
        }
        for &(u, v) in arcs {
            b.add_arc(NodeId(u), NodeId(v))?;
        }
        b.build()
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dag({} nodes, {} arcs)",
            self.num_nodes(),
            self.num_arcs()
        )?;
        for u in self.node_ids() {
            if !self.children(u).is_empty() {
                writeln!(f, "  {:?} -> {:?}", u, self.children(u))?;
            }
        }
        Ok(())
    }
}

/// Index maps produced by [`Dag::induced_subgraph`].
///
/// Memory is proportional to the subgraph, not the original graph, so a
/// decomposition may hold one map per component without quadratic blowup.
/// Reverse lookups ([`SubgraphMap::to_sub`]) binary-search `to_super`
/// directly when the subgraph's nodes were given in ascending order (the
/// common case), or a sorted side index otherwise.
#[derive(Debug, Clone)]
pub struct SubgraphMap {
    to_super: Vec<NodeId>,
    /// Sorted `(super, sub)` pairs; `None` when `to_super` is itself
    /// strictly ascending and can be binary-searched directly.
    rev: Option<Box<[(NodeId, NodeId)]>>,
}

impl SubgraphMap {
    /// Maps a node of the original graph to the subgraph, if included.
    pub fn to_sub(&self, u: NodeId) -> Option<NodeId> {
        match &self.rev {
            None => self
                .to_super
                .binary_search(&u)
                .ok()
                .map(|i| NodeId(i as u32)),
            Some(rev) => rev.binary_search_by_key(&u, |p| p.0).ok().map(|i| rev[i].1),
        }
    }

    /// Maps a subgraph node back to the original graph.
    pub fn to_super(&self, s: NodeId) -> NodeId {
        self.to_super[s.index()]
    }

    /// The original-graph identifiers of all subgraph nodes, in subgraph
    /// index order.
    pub fn super_nodes(&self) -> &[NodeId] {
        &self.to_super
    }
}

/// An incremental, validating builder for [`Dag`].
///
/// Nodes are created with [`DagBuilder::add_node`]; duplicate arcs are
/// silently deduplicated; self-loops are rejected eagerly and cycles at
/// [`DagBuilder::build`] time.
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    labels: Vec<Label>,
    by_label: HashMap<Label, NodeId, NameHashBuild>,
    arcs: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `nodes` nodes and `arcs` arcs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        DagBuilder {
            labels: Vec::with_capacity(nodes),
            by_label: HashMap::with_capacity_and_hasher(nodes, NameHashBuild),
            arcs: Vec::with_capacity(arcs),
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Adds a node with the given label and returns its identifier.
    ///
    /// Labels are not required to be unique here (generated workloads use
    /// unique names; uniqueness can be enforced with
    /// [`DagBuilder::add_unique_node`]).
    pub fn add_node(&mut self, label: impl Into<Label>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        let label = label.into();
        self.by_label.entry(label.clone()).or_insert(id);
        self.labels.push(label);
        id
    }

    /// Adds a node whose label must be new, erroring on duplicates.
    pub fn add_unique_node(&mut self, label: impl Into<Label>) -> Result<NodeId, GraphError> {
        let label = label.into();
        if self.by_label.contains_key(&*label) {
            return Err(GraphError::DuplicateLabel {
                label: label.to_string(),
            });
        }
        Ok(self.add_node(label))
    }

    /// Returns the node previously added with `label` (first occurrence), or
    /// adds a fresh one.
    pub fn node_for_label(&mut self, label: &str) -> NodeId {
        if let Some(&id) = self.by_label.get(label) {
            id
        } else {
            self.add_node(label)
        }
    }

    /// Looks up a label without inserting.
    pub fn get(&self, label: &str) -> Option<NodeId> {
        self.by_label.get(label).copied()
    }

    /// Adds the arc `u -> v`. Duplicates are deduplicated at build time.
    pub fn add_arc(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let len = self.labels.len() as u32;
        for w in [u, v] {
            if w.0 >= len {
                return Err(GraphError::InvalidNode { index: w.0, len });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { index: u.0 });
        }
        self.arcs.push((u, v));
        Ok(())
    }

    /// Finalizes the graph, verifying acyclicity.
    pub fn build(self) -> Result<Dag, GraphError> {
        self.build_with_threads(0)
    }

    /// [`DagBuilder::build`] with the sort/dedup and CSR fill spread over
    /// `threads` scoped worker threads (`0`/`1` = serial). Bit-identical
    /// to the serial build for every thread count.
    pub fn build_with_threads(self, threads: usize) -> Result<Dag, GraphError> {
        let mut arcs = self.arcs;
        par_sort_arcs(&mut arcs, threads);
        arcs.dedup();
        let dag = Dag::from_sorted_unique_arcs_par(self.labels, &arcs, threads);
        kahn_acyclicity_check(&dag)?;
        Ok(dag)
    }
}

/// Sorts an arc list lexicographically; `threads > 1` splits it into
/// per-thread chunk sorts followed by rounds of pairwise merges (each
/// round's merges run concurrently into disjoint output ranges). Sorting
/// is deterministic, so the result is identical to `sort_unstable`.
fn par_sort_arcs(arcs: &mut Vec<(NodeId, NodeId)>, threads: usize) {
    let m = arcs.len();
    if threads <= 1 || m < MIN_PARALLEL_ARCS {
        arcs.sort_unstable();
        return;
    }
    let t = threads.min(m);
    let mut bounds: Vec<usize> = (0..=t).map(|i| m * i / t).collect();
    {
        let mut slices: Vec<&mut [(NodeId, NodeId)]> = Vec::with_capacity(t);
        let mut rest = arcs.as_mut_slice();
        for w in bounds.windows(2) {
            let (head, tail) = rest.split_at_mut(w[1] - w[0]);
            slices.push(head);
            rest = tail;
        }
        std::thread::scope(|scope| {
            for slice in slices {
                scope.spawn(|| slice.sort_unstable());
            }
        });
    }
    // Pairwise merge rounds between two buffers; each merge owns a
    // disjoint contiguous output range, so merges of one round run
    // concurrently.
    let mut src = std::mem::take(arcs);
    let mut dst = vec![(NodeId(0), NodeId(0)); m];
    while bounds.len() > 2 {
        {
            let mut out_rest = dst.as_mut_slice();
            let mut taken = 0usize;
            std::thread::scope(|scope| {
                let mut i = 0;
                while i + 1 < bounds.len() {
                    let lo = bounds[i];
                    let mid = bounds[i + 1];
                    let hi = *bounds.get(i + 2).unwrap_or(&mid);
                    let (out, tail) = out_rest.split_at_mut(hi - lo);
                    out_rest = tail;
                    taken += hi - lo;
                    let (a, b) = (&src[lo..mid], &src[mid..hi]);
                    scope.spawn(move || {
                        let (mut x, mut y) = (0usize, 0usize);
                        for slot in out.iter_mut() {
                            *slot = if y >= b.len() || (x < a.len() && a[x] <= b[y]) {
                                x += 1;
                                a[x - 1]
                            } else {
                                y += 1;
                                b[y - 1]
                            };
                        }
                    });
                    i += 2;
                }
            });
            debug_assert_eq!(taken, m);
        }
        std::mem::swap(&mut src, &mut dst);
        // Keep every other boundary (merged pairs), always keeping the end.
        let end = *bounds.last().expect("non-empty bounds");
        let mut kept: Vec<usize> = bounds.iter().copied().step_by(2).collect();
        if *kept.last().expect("non-empty") != end {
            kept.push(end);
        }
        bounds = kept;
    }
    *arcs = src;
}

/// Kahn's algorithm purely to detect cycles; the topological sort itself
/// lives in [`crate::topo`].
fn kahn_acyclicity_check(dag: &Dag) -> Result<(), GraphError> {
    let n = dag.num_nodes();
    let mut indeg: Vec<u32> = dag.node_ids().map(|u| dag.in_degree(u) as u32).collect();
    let mut stack: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|u| indeg[u.index()] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(u) = stack.pop() {
        seen += 1;
        for &v in dag.children(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                stack.push(v);
            }
        }
    }
    if seen != n {
        let on_cycle = indeg.iter().position(|&d| d > 0).expect("cycle node") as u32;
        return Err(GraphError::Cycle { on_cycle });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // a -> b, a -> c, b -> d, c -> d
        Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let d = diamond();
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_arcs(), 4);
        assert_eq!(d.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.parents(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.sources().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(d.sinks().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert!(d.has_arc(NodeId(0), NodeId(1)));
        assert!(!d.has_arc(NodeId(1), NodeId(0)));
        assert_eq!(d.out_degree(NodeId(0)), 2);
        assert_eq!(d.in_degree(NodeId(3)), 2);
        assert_eq!(d.label(NodeId(2)), "j2");
        assert_eq!(d.find("j2"), Some(NodeId(2)));
        assert_eq!(d.find("nope"), None);
    }

    #[test]
    fn arcs_iterator_is_lexicographic() {
        let d = diamond();
        let arcs: Vec<_> = d.arcs().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn duplicate_arcs_are_deduped() {
        let d = Dag::from_arcs(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(d.num_arcs(), 1);
    }

    #[test]
    fn cycle_detection() {
        let err = Dag::from_arcs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::Cycle { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_node("a");
        assert!(matches!(b.add_arc(a, a), Err(GraphError::SelfLoop { .. })));
    }

    #[test]
    fn invalid_node_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_node("a");
        assert!(matches!(
            b.add_arc(a, NodeId(5)),
            Err(GraphError::InvalidNode { index: 5, .. })
        ));
    }

    #[test]
    fn unique_labels_enforced() {
        let mut b = DagBuilder::new();
        b.add_unique_node("x").unwrap();
        assert!(matches!(
            b.add_unique_node("x"),
            Err(GraphError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn node_for_label_reuses() {
        let mut b = DagBuilder::new();
        let x = b.node_for_label("x");
        let y = b.node_for_label("y");
        assert_eq!(b.node_for_label("x"), x);
        assert_ne!(x, y);
        assert_eq!(b.get("y"), Some(y));
        assert_eq!(b.get("z"), None);
    }

    #[test]
    fn induced_subgraph_keeps_internal_arcs() {
        let d = diamond();
        let (sub, map) = d.induced_subgraph(&[NodeId(0), NodeId(1), NodeId(3)]);
        assert_eq!(sub.num_nodes(), 3);
        // a->b and b->d survive; a->c->d does not.
        assert_eq!(sub.num_arcs(), 2);
        assert_eq!(map.to_super(NodeId(0)), NodeId(0));
        assert_eq!(map.to_sub(NodeId(3)), Some(NodeId(2)));
        assert_eq!(map.to_sub(NodeId(2)), None);
        assert_eq!(sub.label(NodeId(2)), "j3");
        assert_eq!(map.super_nodes(), &[NodeId(0), NodeId(1), NodeId(3)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let d = diamond();
        let (sub, _) = d.induced_subgraph(&[NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_arcs(), 0);
    }

    #[test]
    fn induced_subgraph_renumbering_keeps_sorted_adjacency() {
        // Pick nodes in an order that reverses their relative ids: the
        // subgraph's neighbour slices must still come out sorted.
        let d = Dag::from_arcs(5, &[(0, 2), (0, 3), (1, 2), (1, 4), (3, 4)]).unwrap();
        let (sub, map) = d.induced_subgraph(&[NodeId(4), NodeId(3), NodeId(1), NodeId(0)]);
        assert_eq!(sub.num_nodes(), 4);
        // Surviving arcs: 0->3, 1->4, 3->4 under renumbering 4→0, 3→1, 1→2, 0→3.
        assert_eq!(sub.num_arcs(), 3);
        for u in sub.node_ids() {
            assert!(sub.children(u).windows(2).all(|w| w[0] < w[1]));
            assert!(sub.parents(u).windows(2).all(|w| w[0] < w[1]));
        }
        assert!(sub.has_arc(
            map.to_sub(NodeId(3)).unwrap(),
            map.to_sub(NodeId(4)).unwrap()
        ));
    }

    #[test]
    fn filter_arcs_keeps_nodes_and_drops_arcs() {
        let d = diamond();
        let f = d.filter_arcs(|u, _| u != NodeId(0));
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.num_arcs(), 2);
        assert!(!f.has_arc(NodeId(0), NodeId(1)));
        assert!(f.has_arc(NodeId(1), NodeId(3)));
        assert_eq!(f.label(NodeId(0)), "j0");
        // Keeping everything is an identity copy.
        assert_eq!(d.filter_arcs(|_, _| true), d);
    }

    #[test]
    fn reversed_swaps_sources_and_sinks() {
        let d = diamond();
        let r = d.reversed();
        assert_eq!(r.sources().collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(r.sinks().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(r.num_arcs(), d.num_arcs());
        assert!(r.has_arc(NodeId(3), NodeId(1)));
    }

    #[test]
    fn empty_dag() {
        let d = DagBuilder::new().build().unwrap();
        assert!(d.is_empty());
        assert_eq!(d.sources().count(), 0);
    }
}
