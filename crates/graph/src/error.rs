//! Error types for DAG construction and queries.

use std::fmt;

/// Errors produced while building or querying a [`crate::Dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An arc referenced a node index that was never added.
    InvalidNode {
        /// The offending node index.
        index: u32,
        /// Number of nodes that exist.
        len: u32,
    },
    /// A self-loop `u -> u` was requested.
    SelfLoop {
        /// The node that would loop onto itself.
        index: u32,
    },
    /// The arc set contains a directed cycle, so the graph is not a DAG.
    /// Carries one node known to lie on a cycle.
    Cycle {
        /// A node on some directed cycle.
        on_cycle: u32,
    },
    /// Two nodes were given the same label.
    DuplicateLabel {
        /// The repeated label.
        label: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidNode { index, len } => {
                write!(f, "node index {index} out of range (graph has {len} nodes)")
            }
            GraphError::SelfLoop { index } => write!(f, "self-loop on node {index}"),
            GraphError::Cycle { on_cycle } => {
                write!(f, "graph contains a directed cycle through node {on_cycle}")
            }
            GraphError::DuplicateLabel { label } => {
                write!(f, "duplicate node label {label:?}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::InvalidNode { index: 7, len: 3 };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
        let e = GraphError::SelfLoop { index: 2 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::Cycle { on_cycle: 1 };
        assert!(e.to_string().contains("cycle"));
        let e = GraphError::DuplicateLabel { label: "x".into() };
        assert!(e.to_string().contains("duplicate"));
    }
}
