//! A small fixed-capacity bit set.
//!
//! Used for transitive-closure rows, visited markers and component masks.
//! Implemented locally (64-bit blocks) to keep the substrate dependency-free.

/// A fixed-capacity set of `usize` indices backed by `u64` blocks.
///
/// All operations are `O(capacity / 64)` or better. Indices at or above the
/// capacity must not be inserted (debug-asserted).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct FixedBitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl FixedBitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        FixedBitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity the set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit index {i} >= capacity {}",
            self.capacity
        );
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] |= m;
        !was
    }

    /// Removes `i`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Grows the capacity to at least `capacity` (existing bits keep their
    /// values; a no-op when already large enough).
    pub fn grow(&mut self, capacity: usize) {
        if capacity > self.capacity {
            self.blocks.resize(capacity.div_ceil(64), 0);
            self.capacity = capacity;
        }
    }

    /// In-place union: `self |= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &FixedBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &FixedBitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in intersect"
        );
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Whether `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &FixedBitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &FixedBitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut block = block;
            std::iter::from_fn(move || {
                if block == 0 {
                    None
                } else {
                    let tz = block.trailing_zeros() as usize;
                    block &= block - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

impl std::fmt::Debug for FixedBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for FixedBitSet {
    /// Builds a set with capacity `max + 1` from an iterator of indices.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = FixedBitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = FixedBitSet::new(200);
        for i in [5usize, 64, 63, 199, 0] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = FixedBitSet::new(100);
        let mut b = FixedBitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![50]);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a) && i.is_subset(&b));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = FixedBitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn from_iterator() {
        let s: FixedBitSet = [3usize, 7, 3].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut s: FixedBitSet = [1usize, 2].into_iter().collect();
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
