//! DAG composition — the operations the theory uses to "assemble" complex
//! dags from building blocks.
//!
//! The decomposition of the scheduling algorithm is the inverse of these
//! constructions: a dag built by [`series`] of bipartite blocks (each
//! block's sinks identified with the next block's sources) is exactly a
//! dag the theoretical algorithm can take apart again. The test-suites use
//! these to generate theory-schedulable inputs.

use crate::dag::{Dag, DagBuilder, NodeId};
use crate::error::GraphError;

/// Disjoint union of two dags. Nodes of `b` are renumbered after `a`'s;
/// labels are prefixed (`a.`/`b.`) to stay unique.
pub fn disjoint_union(a: &Dag, b: &Dag) -> Dag {
    let mut builder =
        DagBuilder::with_capacity(a.num_nodes() + b.num_nodes(), a.num_arcs() + b.num_arcs());
    for u in a.node_ids() {
        builder.add_node(format!("a.{}", a.label(u)));
    }
    for u in b.node_ids() {
        builder.add_node(format!("b.{}", b.label(u)));
    }
    let off = a.num_nodes() as u32;
    for (u, v) in a.arcs() {
        builder.add_arc(u, v).expect("a-arc");
    }
    for (u, v) in b.arcs() {
        builder
            .add_arc(NodeId(u.0 + off), NodeId(v.0 + off))
            .expect("b-arc");
    }
    builder.build().expect("union of dags is a dag")
}

/// Series composition: glue `b` on top of `a` by *identifying* pairs of
/// (`a`-sink, `b`-source) nodes. The identified node keeps `a`'s label and
/// inherits both `a`'s in-arcs and `b`'s out-arcs — exactly how a
/// decomposition's shared nodes (sink of one block = source of the next)
/// arise.
///
/// Errors if a pair does not name a sink of `a` and a source of `b`, or if
/// a node is identified twice.
pub fn series(a: &Dag, b: &Dag, identify: &[(NodeId, NodeId)]) -> Result<Dag, GraphError> {
    // Validate.
    let mut seen_a = vec![false; a.num_nodes()];
    let mut b_to_a: Vec<Option<NodeId>> = vec![None; b.num_nodes()];
    for &(sa, sb) in identify {
        if sa.index() >= a.num_nodes() || !a.is_sink(sa) {
            return Err(GraphError::InvalidNode {
                index: sa.0,
                len: a.num_nodes() as u32,
            });
        }
        if sb.index() >= b.num_nodes() || !b.is_source(sb) {
            return Err(GraphError::InvalidNode {
                index: sb.0,
                len: b.num_nodes() as u32,
            });
        }
        if seen_a[sa.index()] || b_to_a[sb.index()].is_some() {
            return Err(GraphError::DuplicateLabel {
                label: a.label(sa).to_string(),
            });
        }
        seen_a[sa.index()] = true;
        b_to_a[sb.index()] = Some(sa);
    }

    let mut builder = DagBuilder::new();
    // a's nodes keep their ids.
    for u in a.node_ids() {
        builder.add_node(format!("a.{}", a.label(u)));
    }
    // b's non-identified nodes get fresh ids.
    let mut b_map: Vec<NodeId> = Vec::with_capacity(b.num_nodes());
    for u in b.node_ids() {
        match b_to_a[u.index()] {
            Some(sa) => b_map.push(sa),
            None => b_map.push(builder.add_node(format!("b.{}", b.label(u)))),
        }
    }
    for (u, v) in a.arcs() {
        builder.add_arc(u, v)?;
    }
    for (u, v) in b.arcs() {
        builder.add_arc(b_map[u.index()], b_map[v.index()])?;
    }
    builder.build()
}

/// Convenience: series-compose by zipping `a`'s sinks with `b`'s sources
/// in index order (as many pairs as the shorter side).
pub fn series_zip(a: &Dag, b: &Dag) -> Result<Dag, GraphError> {
    let sinks: Vec<NodeId> = a.sinks().collect();
    let sources: Vec<NodeId> = b.sources().collect();
    let pairs: Vec<(NodeId, NodeId)> = sinks.into_iter().zip(sources).collect();
    series(a, b, &pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fork() -> Dag {
        // 0 -> 1, 0 -> 2
        Dag::from_arcs(3, &[(0, 1), (0, 2)]).unwrap()
    }

    fn join() -> Dag {
        // 0 -> 2, 1 -> 2
        Dag::from_arcs(3, &[(0, 2), (1, 2)]).unwrap()
    }

    #[test]
    fn union_keeps_both_sides() {
        let u = disjoint_union(&fork(), &join());
        assert_eq!(u.num_nodes(), 6);
        assert_eq!(u.num_arcs(), 4);
        assert_eq!(u.sources().count(), 3);
        assert_eq!(u.find("a.j0"), Some(NodeId(0)));
        assert!(u.find("b.j0").is_some());
    }

    #[test]
    fn series_fork_then_join_is_diamond() {
        // Identify the fork's two sinks with the join's two sources.
        let d = series_zip(&fork(), &join()).unwrap();
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_arcs(), 4);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), 1);
        // The shared middles have one parent and one child each.
        let mid = d.find("a.j1").unwrap();
        assert_eq!(d.in_degree(mid), 1);
        assert_eq!(d.out_degree(mid), 1);
    }

    #[test]
    fn partial_identification_leaves_free_sources() {
        let a = fork();
        let b = join();
        let pairs = [(NodeId(1), NodeId(0))]; // only one glue point
        let d = series(&a, &b, &pairs).unwrap();
        assert_eq!(d.num_nodes(), 5);
        // b's second source stays a source of the composite.
        assert_eq!(d.sources().count(), 2);
    }

    #[test]
    fn invalid_identifications_are_rejected() {
        let a = fork();
        let b = join();
        // a's node 0 is not a sink.
        assert!(series(&a, &b, &[(NodeId(0), NodeId(0))]).is_err());
        // b's node 2 is not a source.
        assert!(series(&a, &b, &[(NodeId(1), NodeId(2))]).is_err());
        // Duplicate identification.
        assert!(series(&a, &b, &[(NodeId(1), NodeId(0)), (NodeId(1), NodeId(1))]).is_err());
        // Out of range.
        assert!(series(&a, &b, &[(NodeId(9), NodeId(0))]).is_err());
    }

    #[test]
    fn chained_series_stays_acyclic_and_layered() {
        let mut dag = fork();
        for _ in 0..3 {
            dag = series_zip(&dag, &join()).unwrap();
        }
        // Each join after the first contributes one unmatched free source.
        assert_eq!(dag.sources().count(), 3);
        assert_eq!(dag.sinks().count(), 1);
        assert!(prio_crate_check(&dag));
    }

    fn prio_crate_check(d: &Dag) -> bool {
        crate::topo::is_linear_extension(d, &crate::topo::topo_order(d))
    }
}
