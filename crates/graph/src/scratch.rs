//! Reusable scratch state for the graph algorithms.
//!
//! The `*_into` variants of the reduction, reachability and topological
//! helpers ([`crate::reduction::shortcut_arcs_into`],
//! [`crate::reach::descendants_into`], [`crate::topo::topo_ranks_into`],
//! …) borrow a [`GraphScratch`] instead of allocating their worklists,
//! visited marks and rank tables per call. A long-lived caller — the
//! batch-mode PRIO pipeline prioritizing many dags in a row — allocates
//! one scratch and reuses it, so steady-state prioritization performs no
//! per-call setup allocations in these helpers.
//!
//! The scratch grows monotonically to the largest graph seen and is safe
//! to share across graphs of different sizes: visited marks are
//! timestamped (a new stamp invalidates all previous marks without
//! clearing), and the remaining buffers are explicitly resized or cleared
//! at the start of each call.

use crate::bitset::FixedBitSet;
use crate::dag::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable buffers for the graph algorithms' `*_into` variants.
///
/// All state is transient between calls; a `GraphScratch` carries no
/// results, only capacity. `Default::default()` is an empty scratch that
/// grows on first use.
#[derive(Debug, Default)]
pub struct GraphScratch {
    /// Timestamped visited marks (`mark[u] == stamp` means visited in the
    /// current traversal).
    pub(crate) mark: Vec<u32>,
    /// The current timestamp; bumped per traversal so `mark` never needs
    /// zeroing.
    pub(crate) stamp: u32,
    /// DFS/BFS worklist.
    pub(crate) stack: Vec<NodeId>,
    /// In-degree table for Kahn's algorithm.
    pub(crate) indeg: Vec<usize>,
    /// Ready-node min-heap for Kahn's algorithm.
    pub(crate) heap: BinaryHeap<Reverse<NodeId>>,
    /// Topological-rank table (used internally by shortcut detection).
    pub(crate) rank: Vec<usize>,
    /// Children-sorted-by-rank buffer for shortcut detection.
    pub(crate) by_rank: Vec<NodeId>,
    /// Visited set for reachability queries (sorted iteration).
    pub(crate) seen: FixedBitSet,
}

impl GraphScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the stamped-mark table to at least `n` nodes and returns a
    /// fresh stamp, invalidating every mark from earlier traversals.
    pub(crate) fn next_stamp(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            // Wrapped: old marks could collide with re-issued stamps.
            self.mark.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// The visited bitset, grown to `n` bits and cleared.
    pub(crate) fn seen_mut(&mut self, n: usize) -> &mut FixedBitSet {
        self.seen.grow(n);
        self.seen.clear();
        &mut self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotonic_and_marks_grow() {
        let mut s = GraphScratch::new();
        let a = s.next_stamp(4);
        let b = s.next_stamp(8);
        assert!(b > a);
        assert!(s.mark.len() >= 8);
    }

    #[test]
    fn stamp_wraparound_clears_marks() {
        let mut s = GraphScratch::new();
        s.next_stamp(2);
        s.mark[0] = u32::MAX;
        s.stamp = u32::MAX;
        let fresh = s.next_stamp(2);
        assert_eq!(fresh, 1);
        assert_eq!(s.mark[0], 0, "wraparound must invalidate stale marks");
    }

    #[test]
    fn seen_is_cleared_between_uses() {
        let mut s = GraphScratch::new();
        s.seen_mut(10).insert(3);
        assert!(!s.seen_mut(10).contains(3));
        assert!(s.seen_mut(20).capacity() >= 20);
    }
}
