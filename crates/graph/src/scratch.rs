//! Reusable scratch state for the graph algorithms.
//!
//! The `*_into` variants of the reduction, reachability and topological
//! helpers ([`crate::reduction::shortcut_arcs_into`],
//! [`crate::reach::descendants_into`], [`crate::topo::topo_ranks_into`],
//! …) borrow a [`GraphScratch`] instead of allocating their worklists,
//! visited marks and rank tables per call. A long-lived caller — the
//! batch-mode PRIO pipeline prioritizing many dags in a row — allocates
//! one scratch and reuses it, so steady-state prioritization performs no
//! per-call setup allocations in these helpers.
//!
//! The scratch grows monotonically to the largest graph seen and is safe
//! to share across graphs of different sizes: visited marks are
//! timestamped (a new stamp invalidates all previous marks without
//! clearing), and the remaining buffers are explicitly resized or cleared
//! at the start of each call.

use crate::bitset::FixedBitSet;
use crate::dag::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable buffers for the graph algorithms' `*_into` variants.
///
/// All state is transient between calls; a `GraphScratch` carries no
/// results, only capacity. `Default::default()` is an empty scratch that
/// grows on first use.
#[derive(Debug, Default)]
pub struct GraphScratch {
    /// Timestamped visited marks (`mark[u] == stamp` means visited in the
    /// current traversal).
    pub(crate) mark: Vec<u32>,
    /// The current timestamp; bumped per traversal so `mark` never needs
    /// zeroing.
    pub(crate) stamp: u32,
    /// DFS/BFS worklist.
    pub(crate) stack: Vec<NodeId>,
    /// In-degree table for Kahn's algorithm.
    pub(crate) indeg: Vec<usize>,
    /// Ready-node min-heap for Kahn's algorithm.
    pub(crate) heap: BinaryHeap<Reverse<NodeId>>,
    /// Topological-rank table (used internally by shortcut detection).
    pub(crate) rank: Vec<usize>,
    /// Children-sorted-by-rank buffer for shortcut detection.
    pub(crate) by_rank: Vec<NodeId>,
    /// Visited set for reachability queries (sorted iteration).
    pub(crate) seen: FixedBitSet,
}

impl GraphScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the stamped-mark table to at least `n` nodes and returns a
    /// fresh stamp, invalidating every mark from earlier traversals.
    pub(crate) fn next_stamp(&mut self, n: usize) -> u32 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            // Wrapped: old marks could collide with re-issued stamps.
            self.mark.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// The visited bitset, grown to `n` bits and cleared.
    pub(crate) fn seen_mut(&mut self, n: usize) -> &mut FixedBitSet {
        self.seen.grow(n);
        self.seen.clear();
        &mut self.seen
    }
}

/// Reusable dense tables for [`crate::Dag::induced_subgraph_in`]:
/// stamped membership marks and local-id renumbering, both O(|G|) and
/// grown once, so materializing many subgraphs of one dag performs no
/// per-subgraph setup work and no per-arc binary searches.
#[derive(Debug, Default)]
pub struct SubgraphScratch {
    /// `stamp_of[u] == stamp` means `u` is in the current node set.
    pub(crate) stamp_of: Vec<u32>,
    /// Local (subgraph) id of `u`, valid only when stamped.
    pub(crate) local_id: Vec<u32>,
    /// Current stamp; bumped per subgraph so the tables never need
    /// clearing.
    pub(crate) stamp: u32,
}

impl SubgraphScratch {
    /// An empty scratch; tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows both tables to at least `n` nodes and returns a fresh stamp.
    pub(crate) fn next_stamp(&mut self, n: usize) -> u32 {
        if self.stamp_of.len() < n {
            self.stamp_of.resize(n, 0);
            self.local_id.resize(n, 0);
        }
        if self.stamp == u32::MAX {
            // Wrapped: old marks could collide with re-issued stamps.
            self.stamp_of.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }
}

/// A reusable arena of recycled scratch buffers, typed by element.
///
/// The front half of the pipeline allocates many short-lived worklists —
/// failed bipartite-block attempts, closure searches, per-part node sets —
/// that the global allocator would otherwise serve one `malloc`/`free`
/// pair at a time. The arena keeps returned buffers (capacity intact,
/// contents cleared on reuse) and hands them back on the next request, so
/// steady-state pipeline runs stop hitting the allocator for temporaries.
/// Owned by the caller's long-lived context (`PrioContext` in `prio-core`)
/// and deliberately not thread-safe: parallel stages give each worker its
/// own arena or plain `Vec`s.
///
/// Counters `graph.arena.vecs_reused` / `graph.arena.vecs_allocated` make
/// the win measurable under the benches' `--profile-alloc` mode.
#[derive(Debug, Default)]
pub struct ScratchArena {
    nodes: Vec<Vec<NodeId>>,
    u32s: Vec<Vec<u32>>,
    bools: Vec<Vec<bool>>,
}

macro_rules! arena_pool {
    ($take:ident, $put:ident, $field:ident, $t:ty) => {
        /// Takes a cleared buffer from the pool (allocating only when the
        /// pool is empty). Return it with the matching `put_*` when done.
        pub fn $take(&mut self) -> Vec<$t> {
            match self.$field.pop() {
                Some(mut v) => {
                    v.clear();
                    prio_obs::counter("graph.arena.vecs_reused").add(1);
                    v
                }
                None => {
                    prio_obs::counter("graph.arena.vecs_allocated").add(1);
                    Vec::new()
                }
            }
        }

        /// Returns a buffer to the pool for later reuse.
        pub fn $put(&mut self, v: Vec<$t>) {
            if v.capacity() > 0 {
                self.$field.push(v);
            }
        }
    };
}

impl ScratchArena {
    /// An empty arena; pools fill as buffers are returned.
    pub fn new() -> Self {
        Self::default()
    }

    arena_pool!(take_nodes, put_nodes, nodes, NodeId);
    arena_pool!(take_u32s, put_u32s, u32s, u32);
    arena_pool!(take_bools, put_bools, bools, bool);

    /// Buffers currently pooled across all types (diagnostic).
    pub fn pooled(&self) -> usize {
        self.nodes.len() + self.u32s.len() + self.bools.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_recycles_capacity() {
        let mut a = ScratchArena::new();
        let mut v = a.take_nodes();
        v.extend([NodeId(1), NodeId(2)]);
        let cap = v.capacity();
        a.put_nodes(v);
        assert_eq!(a.pooled(), 1);
        let v = a.take_nodes();
        assert!(v.is_empty(), "reused buffers are cleared");
        assert_eq!(v.capacity(), cap, "capacity survives the round trip");
        assert_eq!(a.pooled(), 0);
        // Zero-capacity buffers are not worth pooling.
        a.put_u32s(Vec::new());
        assert_eq!(a.pooled(), 0);
    }

    #[test]
    fn stamps_are_monotonic_and_marks_grow() {
        let mut s = GraphScratch::new();
        let a = s.next_stamp(4);
        let b = s.next_stamp(8);
        assert!(b > a);
        assert!(s.mark.len() >= 8);
    }

    #[test]
    fn stamp_wraparound_clears_marks() {
        let mut s = GraphScratch::new();
        s.next_stamp(2);
        s.mark[0] = u32::MAX;
        s.stamp = u32::MAX;
        let fresh = s.next_stamp(2);
        assert_eq!(fresh, 1);
        assert_eq!(s.mark[0], 0, "wraparound must invalidate stale marks");
    }

    #[test]
    fn seen_is_cleared_between_uses() {
        let mut s = GraphScratch::new();
        s.seen_mut(10).insert(3);
        assert!(!s.seen_mut(10).contains(3));
        assert!(s.seen_mut(20).capacity() >= 20);
    }
}
