//! Seeded random DAG generators for property tests and stress tests.

use prio_graph::{Dag, DagBuilder, NodeId};
use rand::Rng;

/// Parameters for the layered random dag generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredParams {
    /// Number of layers (≥ 1).
    pub layers: usize,
    /// Jobs per layer (≥ 1).
    pub width: usize,
    /// Probability of an arc between a job and each job of the next layer.
    pub arc_prob: f64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 4,
            width: 8,
            arc_prob: 0.3,
        }
    }
}

/// Builds a layered random dag: `layers × width` jobs; arcs only between
/// consecutive layers, each present independently with probability
/// `arc_prob`. Every non-first-layer job is guaranteed at least one parent
/// (a random one from the previous layer) so the layer structure is real.
pub fn layered<R: Rng + ?Sized>(p: LayeredParams, rng: &mut R) -> Dag {
    assert!(p.layers >= 1 && p.width >= 1);
    assert!((0.0..=1.0).contains(&p.arc_prob));
    let mut b = DagBuilder::with_capacity(p.layers * p.width, p.layers * p.width * 2);
    let mut prev: Vec<NodeId> = Vec::new();
    for l in 0..p.layers {
        let layer: Vec<NodeId> = (0..p.width)
            .map(|i| b.add_node(format!("L{l}_{i}")))
            .collect();
        for &v in &layer {
            if !prev.is_empty() {
                let mut has_parent = false;
                for &u in &prev {
                    if rng.gen_bool(p.arc_prob) {
                        b.add_arc(u, v).expect("layer arc");
                        has_parent = true;
                    }
                }
                if !has_parent {
                    let u = prev[rng.gen_range(0..prev.len())];
                    b.add_arc(u, v).expect("guaranteed parent");
                }
            }
        }
        prev = layer;
    }
    b.build().expect("layered dag is acyclic")
}

/// Builds a "forward-pair" random dag on `n` nodes: each pair `(i, j)` with
/// `i < j` is an arc independently with probability `arc_prob`. The index
/// order is the topological witness.
pub fn forward_pairs<R: Rng + ?Sized>(n: usize, arc_prob: f64, rng: &mut R) -> Dag {
    let mut b = DagBuilder::with_capacity(n, n * 2);
    let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("r{i}"))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(arc_prob) {
                b.add_arc(ids[i], ids[j]).expect("forward arc");
            }
        }
    }
    b.build().expect("forward-pair dag is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn layered_is_deterministic_per_seed() {
        let p = LayeredParams::default();
        let a = layered(p, &mut SmallRng::seed_from_u64(1));
        let b = layered(p, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
        let c = layered(p, &mut SmallRng::seed_from_u64(2));
        assert_eq!(c.num_nodes(), a.num_nodes());
    }

    #[test]
    fn layered_guarantees_parents() {
        let p = LayeredParams {
            layers: 5,
            width: 6,
            arc_prob: 0.05,
        };
        let d = layered(p, &mut SmallRng::seed_from_u64(3));
        // Only first-layer jobs are sources.
        assert_eq!(d.sources().count(), p.width);
    }

    #[test]
    fn layered_single_layer_is_arcless() {
        let p = LayeredParams {
            layers: 1,
            width: 5,
            arc_prob: 0.9,
        };
        let d = layered(p, &mut SmallRng::seed_from_u64(4));
        assert_eq!(d.num_arcs(), 0);
    }

    #[test]
    fn forward_pairs_is_acyclic_and_sized() {
        let d = forward_pairs(20, 0.2, &mut SmallRng::seed_from_u64(5));
        assert_eq!(d.num_nodes(), 20);
        for (u, v) in d.arcs() {
            assert!(u < v);
        }
    }

    #[test]
    fn forward_pairs_extreme_probabilities() {
        let empty = forward_pairs(6, 0.0, &mut SmallRng::seed_from_u64(6));
        assert_eq!(empty.num_arcs(), 0);
        let full = forward_pairs(6, 1.0, &mut SmallRng::seed_from_u64(7));
        assert_eq!(full.num_arcs(), 15);
    }
}
