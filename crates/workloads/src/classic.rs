//! Small textbook dags: the paper's Fig. 3 example and the standard shapes
//! used across the test-suite, plus the entangled-ring gadget that defeats
//! the bipartite decomposition (used inside the Inspiral workload).

use prio_graph::{Dag, DagBuilder, NodeId};

/// The paper's Fig. 3 example (`IV.dag`): jobs a, b, c, d, e with
/// dependencies a → b, c → d, c → e. The PRIO schedule is c, a, b, d, e.
pub fn fig3_dag() -> Dag {
    let mut b = DagBuilder::new();
    let ids: Vec<NodeId> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(|l| b.add_node(*l))
        .collect();
    b.add_arc(ids[0], ids[1]).expect("a -> b");
    b.add_arc(ids[2], ids[3]).expect("c -> d");
    b.add_arc(ids[2], ids[4]).expect("c -> e");
    b.build().expect("fig3 is acyclic")
}

/// A chain of `n` jobs.
pub fn chain(n: usize) -> Dag {
    let mut b = DagBuilder::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<NodeId> = (0..n).map(|i| b.add_node(format!("c{i}"))).collect();
    for w in ids.windows(2) {
        b.add_arc(w[0], w[1]).expect("chain");
    }
    b.build().expect("chain is acyclic")
}

/// The diamond: one source forking to two middles joining into one sink.
pub fn diamond() -> Dag {
    Dag::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).expect("diamond")
}

/// A fork-join: source → `w` parallel jobs → sink.
pub fn fork_join(w: usize) -> Dag {
    assert!(w >= 1);
    let mut b = DagBuilder::with_capacity(w + 2, 2 * w);
    let src = b.add_node("fork");
    let middles: Vec<NodeId> = (0..w).map(|i| b.add_node(format!("par{i}"))).collect();
    let sink = b.add_node("join");
    for &m in &middles {
        b.add_arc(src, m).expect("fork");
        b.add_arc(m, sink).expect("join");
    }
    b.build().expect("fork-join is acyclic")
}

/// The *entangled ring* of `k` analysis triples: sources `s_i`, internals
/// `j_i`, sinks `t_i` with arcs `s_i → j_i`, `s_i → t_i`,
/// `j_i → t_{(i+1) mod k}` (3k jobs).
///
/// Every source's child `t_i` has an internal parent `j_{i−1}`, so *no*
/// connected bipartite block whose sources are dag sources exists — the
/// decomposition must fall back to the general minimal-`C(s)` search, and
/// the whole ring comes out as one non-bipartite component. This is the
/// gadget that gives the Inspiral workload its >1,000-job non-bipartite
/// component.
pub fn entangled_ring(k: usize) -> Dag {
    assert!(k >= 2, "ring needs at least two triples");
    let mut b = DagBuilder::with_capacity(3 * k, 3 * k);
    let sources: Vec<NodeId> = (0..k).map(|i| b.add_node(format!("s{i}"))).collect();
    let internals: Vec<NodeId> = (0..k).map(|i| b.add_node(format!("j{i}"))).collect();
    let sinks: Vec<NodeId> = (0..k).map(|i| b.add_node(format!("t{i}"))).collect();
    for i in 0..k {
        b.add_arc(sources[i], internals[i]).expect("s -> j");
        b.add_arc(sources[i], sinks[i]).expect("s -> t");
        b.add_arc(internals[i], sinks[(i + 1) % k])
            .expect("j -> next t");
    }
    b.build().expect("ring dag is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape() {
        let d = fig3_dag();
        assert_eq!(d.num_nodes(), 5);
        assert_eq!(d.num_arcs(), 3);
        assert_eq!(d.label(NodeId(2)), "c");
        assert_eq!(d.out_degree(d.find("c").unwrap()), 2);
    }

    #[test]
    fn chain_and_diamond_and_fork_join() {
        assert_eq!(chain(5).num_arcs(), 4);
        assert_eq!(chain(1).num_arcs(), 0);
        assert_eq!(diamond().num_nodes(), 4);
        let fj = fork_join(7);
        assert_eq!(fj.num_nodes(), 9);
        assert_eq!(fj.num_arcs(), 14);
        assert_eq!(fj.sources().count(), 1);
        assert_eq!(fj.sinks().count(), 1);
    }

    #[test]
    fn entangled_ring_shape() {
        let k = 5;
        let d = entangled_ring(k);
        assert_eq!(d.num_nodes(), 3 * k);
        assert_eq!(d.num_arcs(), 3 * k);
        assert_eq!(d.sources().count(), k);
        assert_eq!(d.sinks().count(), k);
        // Every sink has one source parent and one internal parent.
        for i in 0..k {
            let t = d.find(&format!("t{i}")).unwrap();
            assert_eq!(d.in_degree(t), 2);
        }
        // Internals are neither sources nor sinks.
        for i in 0..k {
            let j = d.find(&format!("j{i}")).unwrap();
            assert_eq!(d.in_degree(j), 1);
            assert_eq!(d.out_degree(j), 1);
        }
    }
}
