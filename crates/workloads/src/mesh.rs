//! Mesh-structured computations — the dag family that started the
//! IC-scheduling theory (Rosenberg, *"On scheduling mesh-structured
//! computations for Internet-based computing"*, cited as the paper's
//! \[17\]).
//!
//! The 2-dimensional *evolving mesh*: node `(i, j)` depends on `(i−1, j)`
//! and `(i, j−1)`; the known IC-optimal schedule executes it diagonal by
//! diagonal. These dags exercise the decomposition's repeated
//! detach-a-diagonal behavior and give an independent IC-optimality check
//! for the full pipeline.

use prio_graph::{Dag, DagBuilder, NodeId};

/// A full `rows × cols` 2-D mesh: arcs `(i,j) → (i+1,j)` and
/// `(i,j) → (i,j+1)`.
pub fn mesh2d(rows: usize, cols: usize) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let mut b = DagBuilder::with_capacity(rows * cols, 2 * rows * cols);
    let mut ids = vec![vec![NodeId(0); cols]; rows];
    for (i, row) in ids.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = b.add_node(format!("m_{i}_{j}"));
        }
    }
    for i in 0..rows {
        for j in 0..cols {
            if i + 1 < rows {
                b.add_arc(ids[i][j], ids[i + 1][j]).expect("down arc");
            }
            if j + 1 < cols {
                b.add_arc(ids[i][j], ids[i][j + 1]).expect("right arc");
            }
        }
    }
    b.build().expect("mesh is acyclic")
}

/// The triangular *evolving mesh* of `levels` diagonals: nodes `(i, j)`
/// with `i + j < levels`, same arcs as [`mesh2d`]. Diagonal `d` holds
/// `d + 1` nodes; total `levels·(levels+1)/2`.
pub fn mesh_triangle(levels: usize) -> Dag {
    assert!(levels >= 1);
    let n = levels * (levels + 1) / 2;
    let mut b = DagBuilder::with_capacity(n, 2 * n);
    let mut ids: Vec<Vec<NodeId>> = Vec::with_capacity(levels);
    for i in 0..levels {
        let width = levels - i;
        let mut row = Vec::with_capacity(width);
        for j in 0..width {
            row.push(b.add_node(format!("t_{i}_{j}")));
        }
        ids.push(row);
    }
    for i in 0..levels {
        for j in 0..ids[i].len() {
            // (i, j) -> (i+1, j) exists when i+1+j < levels.
            if i + 1 < levels && j < ids[i + 1].len() {
                b.add_arc(ids[i][j], ids[i + 1][j]).expect("down arc");
            }
            if j + 1 < ids[i].len() {
                b.add_arc(ids[i][j], ids[i][j + 1]).expect("right arc");
            }
        }
    }
    b.build().expect("triangular mesh is acyclic")
}

/// The diagonal-by-diagonal schedule of a `rows × cols` mesh — the
/// theory's IC-optimal order, provided for comparison with PRIO's output.
pub fn mesh2d_diagonal_order(dag: &Dag, rows: usize, cols: usize) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(rows * cols);
    for d in 0..(rows + cols - 1) {
        for i in 0..rows {
            if d >= i && d - i < cols {
                let j = d - i;
                order.push(dag.find(&format!("m_{i}_{j}")).expect("mesh node"));
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_shape() {
        let d = mesh2d(3, 4);
        assert_eq!(d.num_nodes(), 12);
        // Arcs: down 2*4 + right 3*3 = 17.
        assert_eq!(d.num_arcs(), 17);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), 1);
        // Interior nodes have two parents.
        let mid = d.find("m_1_1").unwrap();
        assert_eq!(d.in_degree(mid), 2);
    }

    #[test]
    fn triangle_shape() {
        let d = mesh_triangle(4);
        assert_eq!(d.num_nodes(), 10);
        assert_eq!(d.sources().count(), 1);
        // The last anti-diagonal nodes are the sinks.
        assert_eq!(d.sinks().count(), 4);
    }

    #[test]
    fn diagonal_order_is_valid() {
        let d = mesh2d(3, 3);
        let order = mesh2d_diagonal_order(&d, 3, 3);
        assert_eq!(order.len(), 9);
        assert!(prio_graph::topo::is_linear_extension(&d, &order));
    }

    #[test]
    fn degenerate_meshes() {
        let line = mesh2d(1, 5);
        assert_eq!(line.num_arcs(), 4);
        let dot = mesh2d(1, 1);
        assert_eq!(dot.num_nodes(), 1);
        assert_eq!(mesh_triangle(1).num_nodes(), 1);
    }
}
