//! The AIRSN fMRI dag — the "double umbrella with fringes" (§3.3, Fig. 5).
//!
//! Structure, as described in the paper for width `w` (773 jobs at
//! `w = 250`):
//!
//! * a *handle* of 21 chained jobs (the paper says "about twenty"; 21 makes
//!   the counts work out exactly: the last handle job is the 21st job of
//!   the PRIO schedule and therefore receives priority `773 − 21 + 1 = 753`,
//!   the black-framed bottleneck of Fig. 5);
//! * the last handle job forks into `w` parallel *first-cover* jobs;
//! * each first-cover job additionally depends on its own dedicated
//!   *fringe* source job;
//! * a join collects the first cover, forks into `w` *second-cover* jobs,
//!   and a final join collects those.
//!
//! Total: `21 + w (fringes) + w (cover 1) + 1 + w (cover 2) + 1 = 3w + 23`.

use prio_graph::{Dag, DagBuilder};

/// Length of the handle chain (fixed; see module docs).
pub const HANDLE_LEN: usize = 21;

/// The paper's AIRSN width.
pub const PAPER_WIDTH: usize = 250;

/// Number of jobs of the AIRSN dag of the given width.
pub const fn num_jobs(width: usize) -> usize {
    3 * width + HANDLE_LEN + 2
}

/// Builds the AIRSN dag of the given width (`width ≥ 1`).
pub fn airsn(width: usize) -> Dag {
    assert!(width >= 1, "AIRSN width must be positive");
    let mut b = DagBuilder::with_capacity(num_jobs(width), 4 * width + HANDLE_LEN + 1);
    // Handle chain h0 -> h1 -> ... -> h20.
    let handle: Vec<_> = (0..HANDLE_LEN)
        .map(|i| b.add_node(format!("handle{i}")))
        .collect();
    for w in handle.windows(2) {
        b.add_arc(w[0], w[1]).expect("handle chain");
    }
    let bottleneck = *handle.last().expect("non-empty handle");
    // First cover with dedicated fringes.
    let join1 = b.add_node("join1");
    for i in 0..width {
        let fringe = b.add_node(format!("fringe{i}"));
        let cover = b.add_node(format!("cover1_{i}"));
        b.add_arc(bottleneck, cover).expect("umbrella rib");
        b.add_arc(fringe, cover).expect("fringe");
        b.add_arc(cover, join1).expect("first join");
    }
    // Second cover.
    let join2 = b.add_node("join2");
    for i in 0..width {
        let cover = b.add_node(format!("cover2_{i}"));
        b.add_arc(join1, cover).expect("second umbrella rib");
        b.add_arc(cover, join2).expect("final join");
    }
    b.build().expect("AIRSN is acyclic")
}

/// The paper's AIRSN of width 250 (773 jobs).
pub fn airsn_paper() -> Dag {
    airsn(PAPER_WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_773_jobs() {
        let d = airsn_paper();
        assert_eq!(d.num_nodes(), 773);
        assert_eq!(num_jobs(PAPER_WIDTH), 773);
    }

    #[test]
    fn width_one_instance() {
        let d = airsn(1);
        assert_eq!(d.num_nodes(), num_jobs(1));
        assert_eq!(d.num_nodes(), 26);
    }

    #[test]
    fn structure_matches_description() {
        let w = 10;
        let d = airsn(w);
        // Sources: handle0 plus the w fringes.
        assert_eq!(d.sources().count(), 1 + w);
        // Single sink: the final join.
        assert_eq!(d.sinks().count(), 1);
        // The bottleneck (last handle job) has w children.
        let bottleneck = d.find("handle20").unwrap();
        assert_eq!(d.out_degree(bottleneck), w);
        // Every first-cover job has exactly two parents: bottleneck+fringe.
        for i in 0..w {
            let c = d.find(&format!("cover1_{i}")).unwrap();
            assert_eq!(d.in_degree(c), 2);
            assert!(d.parents(c).contains(&bottleneck));
        }
        // join1 collects the whole first cover and feeds the second.
        let join1 = d.find("join1").unwrap();
        assert_eq!(d.in_degree(join1), w);
        assert_eq!(d.out_degree(join1), w);
    }

    #[test]
    fn critical_path_spans_handle_and_both_covers() {
        let d = airsn(5);
        // handle (20 arcs) + cover1 + join1 + cover2 + join2 = 24 arcs.
        assert_eq!(prio_graph::topo::critical_path_len(&d), HANDLE_LEN - 1 + 4);
    }
}
