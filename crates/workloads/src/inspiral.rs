//! The Inspiral gravitational-wave-search dag (§3.3).
//!
//! The paper states the dag has **2,988 jobs** and "includes a non-bipartite
//! component with over 1000 jobs". The LIGO inspiral pipeline is a staged
//! search (template bank generation, matched filtering, coincidence
//! analysis, follow-up filtering); we synthesize:
//!
//! * a *datafind* source fanning into `pre_width` template-bank jobs,
//!   collected by a coincidence join;
//! * an **entangled ring** of `ring_k` analysis triples seeded from that
//!   join ([`crate::classic::entangled_ring`] wiring) — this is the
//!   non-bipartite component (`3·ring_k` jobs; 1,002 > 1,000 by default);
//! * a collection join over the ring's outputs, fanning into `post_width`
//!   trigger-bank jobs — each *also* depending on a dedicated veto-segment
//!   source job (in the real pipeline the second-stage filter reads
//!   per-chunk veto/injection files prepared independently) — each
//!   followed by a second-stage filtering job, all collected by the final
//!   coincidence join.
//!
//! The dedicated veto sources are what separates FIFO from PRIO here:
//! FIFO spends its early steps on them (they are eligible from the start)
//! while their trigger-bank children stay blocked behind the whole first
//! stage; PRIO defers them, exactly like AIRSN's fringes.
//!
//! Default parameters give exactly `4 + pre_width + 3·ring_k + 3·post_width
//! = 2,988` jobs.

use prio_graph::{Dag, DagBuilder, NodeId};

/// Parameters of the Inspiral-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InspiralParams {
    /// Template-bank jobs in the first stage.
    pub pre_width: usize,
    /// Analysis triples in the entangled ring (component size `3·ring_k`).
    pub ring_k: usize,
    /// Veto-source + trigger-bank + filter triples in the second stage.
    pub post_width: usize,
}

impl Default for InspiralParams {
    /// The paper-sized instance: 2,988 jobs with a 1,002-job non-bipartite
    /// component.
    fn default() -> Self {
        InspiralParams {
            pre_width: 401,
            ring_k: 334,
            post_width: 527,
        }
    }
}

impl InspiralParams {
    /// Total number of jobs generated.
    pub const fn num_jobs(&self) -> usize {
        4 + self.pre_width + 3 * self.ring_k + 3 * self.post_width
    }

    /// A scaled-down instance with roughly `fraction` of the paper's size
    /// (structure preserved; the ring stays above 2 triples).
    pub fn scaled(fraction: f64) -> Self {
        let d = InspiralParams::default();
        let s = |x: usize| ((x as f64 * fraction).round() as usize).max(2);
        InspiralParams {
            pre_width: s(d.pre_width),
            ring_k: s(d.ring_k),
            post_width: s(d.post_width),
        }
    }
}

/// Builds the Inspiral-like dag.
pub fn inspiral(p: InspiralParams) -> Dag {
    assert!(p.pre_width >= 1 && p.ring_k >= 2 && p.post_width >= 1);
    let total = p.num_jobs();
    let mut b = DagBuilder::with_capacity(total, total * 2);

    // Stage 1: datafind -> template banks -> coincidence join.
    let datafind = b.add_node("datafind");
    let sire1 = b.add_node("sire1");
    for i in 0..p.pre_width {
        let bank = b.add_node(format!("tmpltbank{i}"));
        b.add_arc(datafind, bank).expect("fan out");
        b.add_arc(bank, sire1).expect("fan in");
    }

    // Stage 2: the entangled ring, seeded from sire1.
    let ring_sources: Vec<NodeId> = (0..p.ring_k)
        .map(|i| b.add_node(format!("inspiral1_{i}")))
        .collect();
    let ring_internal: Vec<NodeId> = (0..p.ring_k)
        .map(|i| b.add_node(format!("thinca1_{i}")))
        .collect();
    let ring_out: Vec<NodeId> = (0..p.ring_k)
        .map(|i| b.add_node(format!("trigcheck{i}")))
        .collect();
    for i in 0..p.ring_k {
        b.add_arc(sire1, ring_sources[i]).expect("seed ring");
        b.add_arc(ring_sources[i], ring_internal[i])
            .expect("s -> j");
        b.add_arc(ring_sources[i], ring_out[i]).expect("s -> t");
        b.add_arc(ring_internal[i], ring_out[(i + 1) % p.ring_k])
            .expect("j -> next t");
    }

    // Stage 3: collect, second-stage filtering, final coincidence.
    let sire2 = b.add_node("sire2");
    for &t in &ring_out {
        b.add_arc(t, sire2).expect("collect ring");
    }
    let coinc = b.add_node("coinc_final");
    for i in 0..p.post_width {
        let veto = b.add_node(format!("veto{i}"));
        let trig = b.add_node(format!("trigbank{i}"));
        let insp2 = b.add_node(format!("inspiral2_{i}"));
        b.add_arc(sire2, trig).expect("fan out 2");
        b.add_arc(veto, trig).expect("dedicated veto source");
        b.add_arc(trig, insp2).expect("filter pair");
        b.add_arc(insp2, coinc).expect("final join");
    }
    let dag = b.build().expect("inspiral is acyclic");
    debug_assert_eq!(dag.num_nodes(), total);
    dag
}

/// The paper-sized Inspiral instance (2,988 jobs).
pub fn inspiral_paper() -> Dag {
    inspiral(InspiralParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_2988_jobs() {
        assert_eq!(InspiralParams::default().num_jobs(), 2988);
        let d = inspiral_paper();
        assert_eq!(d.num_nodes(), 2988);
    }

    #[test]
    fn ring_component_exceeds_1000_jobs() {
        let p = InspiralParams::default();
        assert!(3 * p.ring_k > 1000);
    }

    #[test]
    fn sources_are_datafind_plus_vetoes() {
        let d = inspiral(InspiralParams {
            pre_width: 3,
            ring_k: 4,
            post_width: 5,
        });
        assert_eq!(d.sources().count(), 1 + 5);
        assert_eq!(d.sinks().count(), 1);
        assert_eq!(d.num_nodes(), 4 + 3 + 12 + 15);
        // Each trigbank depends on the collector and its own veto source.
        for i in 0..5 {
            let t = d.find(&format!("trigbank{i}")).unwrap();
            assert_eq!(d.in_degree(t), 2);
        }
    }

    #[test]
    fn ring_entanglement_present() {
        let d = inspiral(InspiralParams {
            pre_width: 2,
            ring_k: 3,
            post_width: 2,
        });
        // Each trigcheck sink-of-ring has 2 parents: its inspiral1 and the
        // previous thinca1.
        for i in 0..3 {
            let t = d.find(&format!("trigcheck{i}")).unwrap();
            assert_eq!(d.in_degree(t), 2);
            let parents: Vec<&str> = d.parents(t).iter().map(|&p| d.label(p)).collect();
            assert!(parents.iter().any(|l| l.starts_with("inspiral1")));
            assert!(parents.iter().any(|l| l.starts_with("thinca1")));
        }
    }

    #[test]
    fn scaled_keeps_structure() {
        let p = InspiralParams::scaled(0.1);
        let d = inspiral(p);
        assert_eq!(d.num_nodes(), p.num_jobs());
        assert!(p.ring_k >= 2);
        assert!(d.num_nodes() < 400);
    }
}
