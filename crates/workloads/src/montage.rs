//! The Montage sky-mosaic dag (§3.3).
//!
//! The paper states the dag has **7,881 jobs** and "includes a bipartite
//! component with over 1000 jobs each of whose source has from a few to
//! about ten children some of which are shared among the sources". The
//! real Montage workflow projects input images, fits the differences of
//! overlapping projections, models the background, corrects each image and
//! assembles the mosaic; we synthesize:
//!
//! * a 5-job setup chain (`mHdr`-style preamble);
//! * `images` projection jobs (`mProject`), all children of the last setup
//!   job — these are the >1,000 sources of the big bipartite component;
//! * difference-fit jobs (`mDiffFit`): projection `i` spawns `c_i` children
//!   (a deterministic cyclic pattern spanning 2..=10, average 4.5), and
//!   the first difference of each projection is *shared* with the
//!   cyclically next projection (overlap fitting), which both realizes
//!   "some children shared among the sources" and chains the stage into a
//!   single connected bipartite component;
//! * a fit-concatenation join, a background model job, one background
//!   correction per image, an image-table join, the mosaic assembly, and a
//!   tile stage (`shrink` + `jpeg` per tile).
//!
//! Defaults give exactly 7,881 jobs.

use prio_graph::{Dag, DagBuilder, NodeId};

/// Children counts cycled over the projections: "a few to about ten",
/// averaging 4.5 (sums to 54 per 12 images).
pub const DIFF_PATTERN: [usize; 12] = [2, 3, 10, 4, 2, 8, 3, 5, 2, 6, 2, 7];

/// Parameters of the Montage-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontageParams {
    /// Number of projection jobs (sources of the big bipartite component).
    pub images: usize,
    /// Number of output tiles (each adds a shrink and a jpeg job).
    pub tiles: usize,
}

impl Default for MontageParams {
    /// The paper-sized instance: 7,881 jobs.
    fn default() -> Self {
        MontageParams {
            images: 1200,
            tiles: 36,
        }
    }
}

impl MontageParams {
    /// Number of difference-fit jobs generated for these parameters.
    pub fn num_diffs(&self) -> usize {
        (0..self.images)
            .map(|i| DIFF_PATTERN[i % DIFF_PATTERN.len()])
            .sum()
    }

    /// Total number of jobs generated:
    /// `5 (setup) + images + diffs + 1 (concat) + 1 (bgmodel) + images
    /// (corrections) + 1 (imgtbl) + 1 (madd) + 2·tiles`.
    pub fn num_jobs(&self) -> usize {
        5 + 2 * self.images + self.num_diffs() + 4 + 2 * self.tiles
    }

    /// A scaled-down instance with roughly `fraction` of the paper's size.
    pub fn scaled(fraction: f64) -> Self {
        let d = MontageParams::default();
        MontageParams {
            images: ((d.images as f64 * fraction).round() as usize).max(DIFF_PATTERN.len()),
            tiles: ((d.tiles as f64 * fraction).round() as usize).max(1),
        }
    }
}

/// Builds the Montage-like dag.
pub fn montage(p: MontageParams) -> Dag {
    assert!(p.images >= 2 && p.tiles >= 1);
    let total = p.num_jobs();
    let mut b = DagBuilder::with_capacity(total, total * 2);

    // Setup chain.
    let setup: Vec<NodeId> = (0..5).map(|i| b.add_node(format!("setup{i}"))).collect();
    for w in setup.windows(2) {
        b.add_arc(w[0], w[1]).expect("setup chain");
    }
    let setup_end = *setup.last().expect("setup non-empty");

    // Projections.
    let projections: Vec<NodeId> = (0..p.images)
        .map(|i| b.add_node(format!("mProject{i}")))
        .collect();
    for &proj in &projections {
        b.add_arc(setup_end, proj).expect("setup feeds projection");
    }

    // Difference fits: projection i spawns c_i children; each child is
    // shared with the next projection (cyclic neighbour overlap).
    let concat = b.add_node("mConcatFit");
    let mut num_diffs = 0usize;
    for (i, &proj) in projections.iter().enumerate() {
        let c = DIFF_PATTERN[i % DIFF_PATTERN.len()];
        for k in 0..c {
            let diff = b.add_node(format!("mDiffFit_{i}_{k}"));
            num_diffs += 1;
            b.add_arc(proj, diff).expect("own diff");
            if k == 0 {
                // The overlap fit is shared with the cyclically next
                // projection.
                let neighbour = projections[(i + 1) % p.images];
                b.add_arc(neighbour, diff).expect("shared diff");
            }
            b.add_arc(diff, concat).expect("collect fits");
        }
    }
    debug_assert_eq!(num_diffs, p.num_diffs());

    // Background model + per-image corrections.
    let bgmodel = b.add_node("mBgModel");
    b.add_arc(concat, bgmodel).expect("model after concat");
    let imgtbl = b.add_node("mImgtbl");
    for i in 0..p.images {
        let bg = b.add_node(format!("mBackground{i}"));
        b.add_arc(bgmodel, bg).expect("model feeds correction");
        b.add_arc(bg, imgtbl).expect("collect corrections");
    }

    // Mosaic assembly and tiles.
    let madd = b.add_node("mAdd");
    b.add_arc(imgtbl, madd).expect("assemble");
    for t in 0..p.tiles {
        let shrink = b.add_node(format!("mShrink{t}"));
        let jpeg = b.add_node(format!("mJPEG{t}"));
        b.add_arc(madd, shrink).expect("tile shrink");
        b.add_arc(shrink, jpeg).expect("tile jpeg");
    }

    let dag = b.build().expect("montage is acyclic");
    debug_assert_eq!(dag.num_nodes(), total);
    dag
}

/// The paper-sized Montage instance (7,881 jobs).
pub fn montage_paper() -> Dag {
    montage(MontageParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_7881_jobs() {
        assert_eq!(MontageParams::default().num_jobs(), 7881);
        let d = montage_paper();
        assert_eq!(d.num_nodes(), 7881);
    }

    #[test]
    fn projection_stage_matches_description() {
        let p = MontageParams {
            images: 24,
            tiles: 2,
        };
        let d = montage(p);
        assert_eq!(d.num_nodes(), p.num_jobs());
        // Each projection's out-degree is its own diffs plus its cyclic
        // predecessor's single shared diff: between 3 and 11 ("a few to
        // about ten children").
        for i in 0..p.images {
            let proj = d.find(&format!("mProject{i}")).unwrap();
            let own = DIFF_PATTERN[i % DIFF_PATTERN.len()];
            assert_eq!(d.out_degree(proj), own + 1);
            assert!((3..=11).contains(&d.out_degree(proj)));
        }
        // Only the first diff of each projection is shared.
        assert_eq!(d.in_degree(d.find("mDiffFit_0_0").unwrap()), 2);
        assert_eq!(d.in_degree(d.find("mDiffFit_0_1").unwrap()), 1);
    }

    #[test]
    fn paper_component_has_over_1000_sources() {
        let p = MontageParams::default();
        assert!(p.images > 1000);
        // Average children per source (own diffs only) is 4.5 — "a few".
        let avg = p.num_diffs() as f64 / p.images as f64;
        assert!((avg - 4.5).abs() < 1e-9);
        assert_eq!(DIFF_PATTERN.iter().max(), Some(&10));
    }

    #[test]
    fn single_source_and_tile_sinks() {
        let p = MontageParams {
            images: 12,
            tiles: 3,
        };
        let d = montage(p);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), p.tiles);
    }
}
