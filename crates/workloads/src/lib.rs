//! # prio-workloads — synthetic scientific-workflow DAGs (§3.3)
//!
//! The paper evaluates the `prio` tool on four proprietary scientific dags.
//! We synthesize structurally faithful stand-ins from every fact the paper
//! states about them (see DESIGN.md for the substitution argument):
//!
//! | dag | jobs | structure reproduced |
//! |-----|------|----------------------|
//! | [`airsn::airsn`] | 773 @ width 250 | "double umbrella with fringes": ~20-job handle, two width-`w` forks with a join between, each first-fork job with a dedicated fringe parent; the bottleneck job sits at schedule position 21 (priority 753 of 773) |
//! | [`inspiral::inspiral`] | 2,988 | contains a non-bipartite component with over 1,000 jobs (an entangled ring of analysis triples) |
//! | [`montage::montage`] | 7,881 | contains a bipartite component with over 1,000 sources, each with a few to about ten children, some shared between sources |
//! | [`sdss::sdss`] | 48,013 | contains a bipartite component with over 1,500 sources, each with three children, some shared |
//!
//! All generators are parameterized (the paper's AIRSN is explicitly "a
//! member of a family … parameterized by width") and default to the paper's
//! exact job counts; scaled-down variants are used by the cheaper
//! simulation sweeps. [`random_dag`] provides seeded random DAGs for
//! property tests, and [`classic`] small textbook dags including the
//! paper's Fig. 3 example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airsn;
pub mod classic;
pub mod inspiral;
pub mod mesh;
pub mod montage;
pub mod random_dag;
pub mod sdss;
pub mod spec;

pub use spec::{paper_suite, scaled_suite, Workload};
