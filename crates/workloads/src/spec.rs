//! The evaluation suite: the four scientific dags at paper scale and at
//! reduced scale for the cheaper simulation sweeps.

use crate::{airsn, inspiral, montage, sdss};
use prio_graph::Dag;
use prio_ir::Workflow;

/// A named workload, carried as IR so every downstream consumer (sim,
/// bench, CLI) takes the same type a frontend import produces.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name, e.g. `"AIRSN"`.
    pub name: &'static str,
    /// The workflow, tagged `FormatId::Synthetic`.
    pub workflow: Workflow,
}

impl Workload {
    fn new(name: &'static str, dag: Dag) -> Self {
        Workload {
            name,
            workflow: Workflow::synthetic(dag),
        }
    }

    /// The underlying dag.
    pub fn dag(&self) -> &Dag {
        self.workflow.dag()
    }
}

/// The four scientific dags at the paper's exact sizes:
/// AIRSN 773, Inspiral 2,988, Montage 7,881, SDSS 48,013.
pub fn paper_suite() -> Vec<Workload> {
    vec![
        Workload::new("AIRSN", airsn::airsn_paper()),
        Workload::new("Inspiral", inspiral::inspiral_paper()),
        Workload::new("Montage", montage::montage_paper()),
        Workload::new("SDSS", sdss::sdss_paper()),
    ]
}

/// The suite scaled to roughly `fraction` of the paper's sizes (AIRSN by
/// width, the others by their stage parameters). Used for laptop-scale
/// simulation sweeps; the structural features (fringed double umbrella,
/// non-bipartite ring, shared-children bipartite stages) are preserved.
pub fn scaled_suite(fraction: f64) -> Vec<Workload> {
    assert!(fraction > 0.0 && fraction <= 1.0);
    let width = ((airsn::PAPER_WIDTH as f64 * fraction).round() as usize).max(4);
    vec![
        Workload::new("AIRSN", airsn::airsn(width)),
        Workload::new(
            "Inspiral",
            inspiral::inspiral(inspiral::InspiralParams::scaled(fraction)),
        ),
        Workload::new(
            "Montage",
            montage::montage(montage::MontageParams::scaled(fraction)),
        ),
        Workload::new("SDSS", sdss::sdss(sdss::SdssParams::scaled(fraction))),
    ]
}

/// Looks a workload up by (case-insensitive) name in the paper suite.
pub fn paper_workload(name: &str) -> Option<Workload> {
    paper_suite()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_ir::FormatId;

    #[test]
    fn paper_suite_sizes() {
        let sizes: Vec<(&str, usize)> = paper_suite()
            .iter()
            .map(|w| (w.name, w.dag().num_nodes()))
            .collect();
        assert_eq!(
            sizes,
            vec![
                ("AIRSN", 773),
                ("Inspiral", 2988),
                ("Montage", 7881),
                ("SDSS", 48013)
            ]
        );
    }

    #[test]
    fn workloads_are_synthetic_workflows() {
        let w = paper_workload("AIRSN").unwrap();
        assert_eq!(w.workflow.source(), FormatId::Synthetic);
        assert!(w.workflow.priorities().is_empty());
        // Deref: Dag methods are reachable through the workflow.
        assert_eq!(w.workflow.num_nodes(), 773);
    }

    #[test]
    fn scaled_suite_is_smaller_but_structured() {
        let scaled = scaled_suite(0.1);
        let paper = paper_suite();
        for (s, p) in scaled.iter().zip(&paper) {
            assert_eq!(s.name, p.name);
            assert!(s.dag().num_nodes() < p.dag().num_nodes());
            assert!(s.dag().num_nodes() > 10);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(paper_workload("airsn").unwrap().dag().num_nodes(), 773);
        assert_eq!(paper_workload("SDSS").unwrap().dag().num_nodes(), 48013);
        assert!(paper_workload("nope").is_none());
    }
}
