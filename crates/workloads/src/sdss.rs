//! The SDSS galaxy-cluster-search dag (§3.3).
//!
//! The paper states the dag has **48,013 jobs** and "includes a bipartite
//! component with over 1,500 jobs whose each source has three children some
//! of which are shared among the sources". The Sloan cluster-finding
//! pipeline processes sky *fields* and then runs a per-target search
//! (brgSearch → bcgSearch → bcgCoalesce chains in the Chimera/maxBcg
//! workflow); we synthesize:
//!
//! * `fields` field-calibration source jobs, each with exactly **three**
//!   children (field products); every field after the first *shares* one
//!   child with the previous field (adjacent sky fields overlap), which
//!   chains the whole stage into a single bipartite component with
//!   >1,500 sources;
//! * a catalog join collecting all field products;
//! * `targets` per-target search chains of length 3 hanging off the
//!   catalog, each chain head *also* depending on a dedicated per-target
//!   seed job (the target list extraction the real pipeline prepares
//!   independently); one lengthened chain absorbs the remainder so the
//!   default totals exactly 48,013;
//! * a final cluster-catalog collection job.
//!
//! The per-target seeds are the FIFO trap: they are eligible from time 0,
//! so FIFO executes tens of thousands of them while their chain children
//! stay blocked behind the whole field stage; PRIO defers them — the same
//! mechanism as AIRSN's fringes (§3.4).

use prio_graph::{Dag, DagBuilder, NodeId};

/// Parameters of the SDSS-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdssParams {
    /// Number of field source jobs.
    pub fields: usize,
    /// Number of per-target search chains.
    pub targets: usize,
    /// Extra jobs appended to the first target chain (absorbs remainders
    /// when matching an exact total).
    pub extra_chain: usize,
}

impl Default for SdssParams {
    /// The paper-sized instance: 48,013 jobs.
    fn default() -> Self {
        SdssParams {
            fields: 1600,
            targets: 10802,
            extra_chain: 2,
        }
    }
}

impl SdssParams {
    /// Field-product jobs: 3 per field, one shared with the previous field
    /// for every field after the first: `3·fields − (fields − 1)`.
    pub const fn num_products(&self) -> usize {
        2 * self.fields + 1
    }

    /// Total jobs: `fields + products + 1 (catalog) + 4·targets (seed +
    /// 3-chain each) + extra_chain + 1 (final)`.
    pub const fn num_jobs(&self) -> usize {
        self.fields + self.num_products() + 1 + 4 * self.targets + self.extra_chain + 1
    }

    /// A scaled-down instance with roughly `fraction` of the paper's size.
    pub fn scaled(fraction: f64) -> Self {
        let d = SdssParams::default();
        SdssParams {
            fields: ((d.fields as f64 * fraction).round() as usize).max(8),
            targets: ((d.targets as f64 * fraction).round() as usize).max(2),
            extra_chain: 0,
        }
    }
}

/// Builds the SDSS-like dag.
pub fn sdss(p: SdssParams) -> Dag {
    assert!(p.fields >= 4 && p.targets >= 1);
    let total = p.num_jobs();
    let mut b = DagBuilder::with_capacity(total, total * 2);

    // Field stage: each field has 3 children; every field after the first
    // shares one child (the overlap product) with the previous field.
    let fields: Vec<NodeId> = (0..p.fields)
        .map(|i| b.add_node(format!("field{i}")))
        .collect();
    let catalog = b.add_node("catalog");
    let mut last_product = None;
    for (i, &field) in fields.iter().enumerate() {
        let own = if i == 0 { 3 } else { 2 };
        if let Some(shared) = last_product {
            b.add_arc(field, shared).expect("shared overlap product");
        }
        for k in 0..own {
            let prod = b.add_node(format!("product_{i}_{k}"));
            b.add_arc(field, prod).expect("field product");
            b.add_arc(prod, catalog).expect("collect products");
            last_product = Some(prod);
        }
    }

    // Target stage: per-target seed + chains of brgSearch -> bcgSearch ->
    // bcgCoalesce; the chain head needs both the catalog and its seed.
    let final_join = b.add_node("clusterCatalog");
    for t in 0..p.targets {
        let seed = b.add_node(format!("seed{t}"));
        let len = if t == 0 { 3 + p.extra_chain } else { 3 };
        let mut prev = catalog;
        for step in 0..len {
            let job = b.add_node(format!("target_{t}_{step}"));
            b.add_arc(prev, job).expect("target chain");
            if step == 0 {
                b.add_arc(seed, job).expect("per-target seed");
            }
            prev = job;
        }
        b.add_arc(prev, final_join).expect("collect targets");
    }

    let dag = b.build().expect("sdss is acyclic");
    debug_assert_eq!(dag.num_nodes(), total);
    dag
}

/// The paper-sized SDSS instance (48,013 jobs).
pub fn sdss_paper() -> Dag {
    sdss(SdssParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_has_48013_jobs() {
        assert_eq!(SdssParams::default().num_jobs(), 48013);
    }

    #[test]
    fn paper_instance_builds_with_exact_count() {
        // Building 48k nodes is cheap; keep this in the fast suite.
        let d = sdss_paper();
        assert_eq!(d.num_nodes(), 48013);
        assert_eq!(d.sinks().count(), 1);
    }

    #[test]
    fn field_stage_matches_description() {
        let p = SdssParams {
            fields: 8,
            targets: 2,
            extra_chain: 0,
        };
        let d = sdss(p);
        assert_eq!(d.num_nodes(), p.num_jobs());
        // Every field source has exactly 3 children.
        for i in 0..p.fields {
            let f = d.find(&format!("field{i}")).unwrap();
            assert!(d.is_source(f));
            assert_eq!(d.out_degree(f), 3, "field{i}");
        }
        // Each field's last product is shared with the next field.
        let shared = d.find("product_0_2").unwrap();
        assert_eq!(d.in_degree(shared), 2);
        let unshared = d.find("product_0_0").unwrap();
        assert_eq!(d.in_degree(unshared), 1);
        // Sharing chains the whole field stage into one weakly-connected
        // piece: walking shared products reaches every field.
        let mut products = Vec::new();
        for i in 0..p.fields {
            for k in 0..3 {
                if let Some(v) = d.find(&format!("product_{i}_{k}")) {
                    products.push(v);
                }
            }
        }
        let shared_count = products.iter().filter(|&&v| d.in_degree(v) == 2).count();
        assert_eq!(shared_count, p.fields - 1);
    }

    #[test]
    fn component_has_over_1500_sources() {
        let p = SdssParams::default();
        assert!(p.fields > 1500);
    }

    #[test]
    fn extra_chain_extends_first_target() {
        let p = SdssParams {
            fields: 4,
            targets: 2,
            extra_chain: 2,
        };
        let d = sdss(p);
        assert!(d.find("target_0_4").is_some());
        assert!(d.find("target_1_3").is_none());
    }
}
