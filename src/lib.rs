//! # dagprio — a tool for prioritizing DAGMan jobs, and its evaluation
//!
//! A from-scratch Rust reproduction of Malewicz, Foster, Rosenberg and
//! Wilde, *"A Tool for Prioritizing DAGMan Jobs and Its Evaluation"*
//! (2006): an IC-optimality-inspired scheduling heuristic that prioritizes
//! the interdependent jobs of a Condor DAGMan input file so that the
//! number of *eligible* jobs stays as high as possible throughout the
//! computation, plus the stochastic grid simulator used to evaluate it.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — DAG substrate (topological sort, transitive reduction,
//!   bipartite analysis, DOT export);
//! * [`core`] — the scheduling heuristic (decomposition, bipartite family
//!   catalog, `⊵_r` priorities, greedy combine) and the FIFO baseline;
//! * [`ir`] — the workflow intermediate representation every frontend
//!   imports into and every consumer (scheduler, simulator, benches)
//!   reads: [`ir::Workflow`], the [`ir::Frontend`] trait, and the
//!   [`ir::FormatRegistry`];
//! * [`dagman`] — the DAGMan frontend: input files and job-submit
//!   description files, parsing, priority instrumentation, and
//!   [`dagman::registry()`] assembling all built-in frontends
//!   (DAGMan, JSON, edge list);
//! * [`workloads`] — synthetic AIRSN / Inspiral / Montage / SDSS dags;
//! * [`stats`] — distributions, sampling distributions, ratio confidence
//!   intervals;
//! * [`sim`] — the event-driven grid simulator and the §4 experiment
//!   harness;
//! * [`obs`] — zero-dependency observability: phase-timing spans, atomic
//!   counters, and structured JSONL event traces across the pipeline;
//! * [`serve`] — the `prio serve` daemon: line-delimited JSON requests
//!   over TCP or stdio, a bounded worker queue with load shedding, and a
//!   content-hash cache of prioritized results.
//!
//! ## Quickstart
//!
//! ```
//! use dagprio::prioritize_dagman_text;
//!
//! let input = "\
//! JOB a a.submit
//! JOB b b.submit
//! JOB c c.submit
//! JOB d d.submit
//! JOB e e.submit
//! PARENT a CHILD b
//! PARENT c CHILD d e
//! ";
//! let out = prioritize_dagman_text(input).unwrap();
//! assert_eq!(out.schedule_names, ["c", "a", "b", "d", "e"]);
//! assert!(out.instrumented.contains("VARS c jobpriority=\"5\""));
//! ```

pub use prio_core as core;
pub use prio_dagman as dagman;
pub use prio_graph as graph;
pub use prio_ir as ir;
pub use prio_obs as obs;
pub use prio_serve as serve;
pub use prio_sim as sim;
pub use prio_stats as stats;
pub use prio_workloads as workloads;

use prio_core::prio::{PrioOptions, Prioritizer};
use prio_dagman::instrument::{instrument_dagman, priorities_by_job};
use prio_dagman::parse::parse_dagman_threads;
use prio_dagman::write::write_dagman;
use prio_ir::{Frontend, Workflow};

/// The result of running the `prio` pipeline over DAGMan text.
#[derive(Debug, Clone)]
pub struct PrioritizedDagman {
    /// The instrumented DAGMan file text (with `jobpriority` VARS).
    pub instrumented: String,
    /// Job names in PRIO schedule order.
    pub schedule_names: Vec<String>,
    /// The extracted dependency dag.
    pub dag: prio_graph::Dag,
    /// The full scheduler output (components, superdag, statistics).
    pub result: prio_core::PrioResult,
}

/// One-call convenience mirroring the `prio` tool: parse DAGMan text, run
/// the scheduling heuristic, and return the instrumented text.
///
/// Failures carry stage provenance: parse errors surface as
/// [`prio_core::PrioError::Parse`], pipeline bugs as
/// [`prio_core::PrioError::InternalInvariant`].
pub fn prioritize_dagman_text(text: &str) -> Result<PrioritizedDagman, prio_core::PrioError> {
    prioritize_dagman_text_threads(text, 0)
}

/// Like [`prioritize_dagman_text`], with `threads` worker threads for the
/// parallel pipeline stages (chunked parsing, CSR build, reduction,
/// decomposition). `0` or `1` runs fully serial; the result is
/// bit-identical for every thread count.
pub fn prioritize_dagman_text_threads(
    text: &str,
    threads: usize,
) -> Result<PrioritizedDagman, prio_core::PrioError> {
    let mut file = parse_dagman_threads(text, threads)?;
    let dag = file.to_dag()?;
    let result = Prioritizer::with_options(PrioOptions {
        threads,
        ..PrioOptions::default()
    })
    .prioritize(&dag)?;
    let schedule_names: Vec<String> = result
        .schedule
        .order()
        .iter()
        .map(|&u| dag.label(u).to_string())
        .collect();
    let priorities = priorities_by_job(schedule_names.iter().map(String::as_str));
    instrument_dagman(&mut file, &priorities)?;
    Ok(PrioritizedDagman {
        instrumented: write_dagman(&file),
        schedule_names,
        dag,
        result,
    })
}

/// One-call convenience over the IR path: import `text` through the
/// auto-detected (or named) frontend, prioritize, and export the same
/// format with priorities attached. `path` is an optional file name used
/// for extension-based detection.
pub fn prioritize_workflow_text(
    text: &str,
    path: Option<&str>,
    format: Option<&str>,
) -> Result<(Workflow, String), prio_core::PrioError> {
    let reg = prio_dagman::registry();
    let frontend: &dyn Frontend = match format {
        Some(name) => reg.by_name(name).ok_or_else(|| {
            prio_ir::ImportError::whole_file(
                prio_ir::FormatId::Dagman,
                format!("unknown format {name:?}"),
            )
        })?,
        None => reg.detect(path, text).ok_or_else(|| {
            prio_ir::ImportError::whole_file(
                prio_ir::FormatId::Dagman,
                "cannot detect workflow format".to_string(),
            )
        })?,
    };
    let workflow = frontend.import(text)?;
    let result = prio_core::prioritize(&workflow)?;
    let rendered = frontend.export(&workflow, &result.priorities());
    Ok((workflow, rendered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_dagman::parse::parse_dagman;

    #[test]
    fn fig3_roundtrip() {
        let input = "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nJOB d d.sub\nJOB e e.sub\nPARENT a CHILD b\nPARENT c CHILD d e\n";
        let out = prioritize_dagman_text(input).unwrap();
        assert_eq!(out.schedule_names, ["c", "a", "b", "d", "e"]);
        assert_eq!(out.dag.num_nodes(), 5);
        assert_eq!(out.result.stats.num_components, 2);
        // Instrumented text parses back and carries the priorities.
        let reparsed = parse_dagman(&out.instrumented).unwrap();
        assert_eq!(reparsed.vars_value("c", "jobpriority"), Some("5"));
        assert_eq!(reparsed.vars_value("e", "jobpriority"), Some("1"));
    }

    #[test]
    fn workflow_text_path_handles_all_formats() {
        let input = "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\n";
        let (wf, rendered) = prioritize_workflow_text(input, Some("x.dag"), None).unwrap();
        assert_eq!(wf.num_jobs(), 2);
        assert!(rendered.contains("jobpriority=\"2\""));
        let (_, edges) = prioritize_workflow_text("a\tb\n", None, Some("edges")).unwrap();
        assert!(edges.contains("@priority\ta\t2"), "{edges}");
        assert!(prioritize_workflow_text("a\tb\n", None, Some("nope")).is_err());
    }

    #[test]
    fn threaded_facade_is_bit_identical() {
        let input = "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nJOB d d.sub\nJOB e e.sub\nPARENT a CHILD b\nPARENT c CHILD d e\n";
        let serial = prioritize_dagman_text(input).unwrap();
        let par = prioritize_dagman_text_threads(input, 4).unwrap();
        assert_eq!(par.schedule_names, serial.schedule_names);
        assert_eq!(par.instrumented, serial.instrumented);
        assert_eq!(par.dag, serial.dag);
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(prioritize_dagman_text("JOB incomplete").is_err());
        assert!(
            prioritize_dagman_text("JOB a x\nJOB b x\nPARENT a CHILD b\nPARENT b CHILD a\n")
                .is_err()
        );
    }
}
