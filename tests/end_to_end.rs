//! End-to-end integration tests spanning the workspace: workloads →
//! scheduler → DAGMan instrumentation → simulator.

use dagprio::core::combine::CombineEngine;
use dagprio::core::decompose::DecomposeOptions;
use dagprio::core::eligibility::eligibility_profile;
use dagprio::core::fifo::fifo_schedule;
use dagprio::core::prio::{prioritize, PrioOptions, Prioritizer};
use dagprio::dagman::parse::parse_dagman;
use dagprio::prioritize_dagman_text;
use dagprio::workloads::airsn::{airsn, HANDLE_LEN};
use dagprio::workloads::classic::{entangled_ring, fig3_dag};
use dagprio::workloads::inspiral::{inspiral, InspiralParams};
use dagprio::workloads::montage::{montage, MontageParams};
use dagprio::workloads::scaled_suite;
use dagprio::workloads::sdss::{sdss, SdssParams};

#[test]
fn prio_schedules_are_valid_on_the_scaled_suite() {
    for w in scaled_suite(0.05) {
        let res = prioritize(w.dag()).unwrap();
        assert!(
            res.schedule.is_valid_for(w.dag()),
            "{}: invalid schedule",
            w.name
        );
        assert_eq!(res.schedule.len(), w.dag().num_nodes());
    }
}

#[test]
fn prio_dominates_fifo_cumulatively_on_the_scaled_suite() {
    for w in scaled_suite(0.05) {
        let prio = prioritize(w.dag()).unwrap().schedule;
        let fifo = fifo_schedule(w.dag());
        let ep: usize = eligibility_profile(w.dag(), prio.order()).iter().sum();
        let ef: usize = eligibility_profile(w.dag(), fifo.order()).iter().sum();
        assert!(
            ep >= ef,
            "{}: PRIO cumulative eligibility {ep} below FIFO {ef}",
            w.name
        );
    }
}

#[test]
fn airsn_bottleneck_priority_matches_fig5_at_small_widths() {
    // The last handle job must always sit at schedule position 21, i.e.
    // priority n − 20, generalizing the paper's 753 at width 250.
    for width in [5usize, 30, 100] {
        let dag = airsn(width);
        let res = prioritize(&dag).unwrap();
        let bottleneck = dag.find(&format!("handle{}", HANDLE_LEN - 1)).unwrap();
        let prio = res.schedule.priorities();
        assert_eq!(
            prio[bottleneck.index()] as usize,
            dag.num_nodes() - HANDLE_LEN + 1,
            "width {width}"
        );
    }
}

#[test]
fn airsn_eligibility_difference_spikes_by_the_fringe_count() {
    // FIFO burns its early steps on fringes whose cover children stay
    // blocked; PRIO unlocks the bottleneck first. The max difference is
    // close to the width.
    let width = 40;
    let dag = airsn(width);
    let prio = prioritize(&dag).unwrap().schedule;
    let fifo = fifo_schedule(&dag);
    let diff = dagprio::core::schedule::profile_difference(&dag, &prio, &fifo);
    let max = diff.iter().copied().max().unwrap();
    assert!(
        max as usize >= width - 2,
        "expected a spike near the width {width}, got {max}"
    );
    assert!(
        diff.iter().all(|&d| d >= 0),
        "PRIO never below FIFO on AIRSN"
    );
}

#[test]
fn inspiral_ring_forces_the_general_search() {
    let dag = inspiral(InspiralParams {
        pre_width: 5,
        ring_k: 20,
        post_width: 5,
    });
    let res = prioritize(&dag).unwrap();
    assert!(res.stats.general_search_iterations >= 1);
    // The ring is one non-bipartite component of 3k jobs.
    let ring = res
        .components
        .iter()
        .find(|c| !c.bipartite)
        .expect("a non-bipartite component exists");
    assert_eq!(ring.len(), 3 * 20);
    assert!(res.schedule.is_valid_for(&dag));
}

#[test]
fn entangled_ring_alone_is_one_component() {
    let dag = entangled_ring(10);
    let res = prioritize(&dag).unwrap();
    assert_eq!(res.stats.num_components, 1);
    assert_eq!(res.stats.heuristic_scheduled, 1);
    assert!(res.schedule.is_valid_for(&dag));
}

#[test]
fn montage_big_bipartite_component_is_found() {
    let p = MontageParams {
        images: 60,
        tiles: 4,
    };
    let dag = montage(p);
    let res = prioritize(&dag).unwrap();
    let big = res
        .components
        .iter()
        .map(|c| (c.bipartite, c.len()))
        .filter(|&(b, _)| b)
        .map(|(_, l)| l)
        .max()
        .unwrap();
    // projections + their diffs in a single connected block.
    assert!(big >= 60 + p.num_diffs(), "got {big}");
    assert!(res.schedule.is_valid_for(&dag));
}

#[test]
fn sdss_field_component_has_three_children_per_source() {
    let p = SdssParams {
        fields: 40,
        targets: 30,
        extra_chain: 0,
    };
    let dag = sdss(p);
    let res = prioritize(&dag).unwrap();
    // The field block: 40 sources and 81 shared products.
    let field_block = res
        .components
        .iter()
        .find(|c| c.num_nonsinks() == 40)
        .expect("field block exists");
    assert_eq!(field_block.len(), 40 + p.num_products());
    assert!(res.schedule.is_valid_for(&dag));
}

#[test]
fn engineered_and_naive_pipelines_agree_on_structured_dags() {
    let naive = Prioritizer::with_options(PrioOptions {
        decompose: DecomposeOptions { fast_path: false },
        engine: CombineEngine::Naive,
        optimal_search_limit: 0,
        threads: 0,
    });
    for dag in [
        airsn(10),
        inspiral(InspiralParams {
            pre_width: 4,
            ring_k: 5,
            post_width: 4,
        }),
        montage(MontageParams {
            images: 12,
            tiles: 2,
        }),
        sdss(SdssParams {
            fields: 8,
            targets: 5,
            extra_chain: 0,
        }),
    ] {
        let fast = prioritize(&dag).unwrap().schedule;
        let slow = naive.prioritize(&dag).unwrap().schedule;
        assert_eq!(fast, slow);
    }
}

#[test]
fn dagman_text_pipeline_matches_direct_pipeline() {
    let dag = fig3_dag();
    let direct = prioritize(&dag).unwrap();
    let text = "JOB a a.sub\nJOB b b.sub\nJOB c c.sub\nJOB d d.sub\nJOB e e.sub\nPARENT a CHILD b\nPARENT c CHILD d e\n";
    let via_text = prioritize_dagman_text(text).unwrap();
    let direct_names: Vec<&str> = direct
        .schedule
        .order()
        .iter()
        .map(|&u| dag.label(u))
        .collect();
    assert_eq!(via_text.schedule_names, direct_names);

    // The instrumented file re-parses, and replaying its priorities gives
    // back the same schedule.
    let reparsed = parse_dagman(&via_text.instrumented).unwrap();
    let dag2 = reparsed.to_dag().unwrap();
    let mut named: Vec<(String, u32)> = reparsed
        .job_names()
        .iter()
        .map(|&n| {
            (
                n.to_string(),
                reparsed
                    .vars_value(n, "jobpriority")
                    .unwrap()
                    .parse()
                    .unwrap(),
            )
        })
        .collect();
    named.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
    let replayed: Vec<_> = named.iter().map(|(n, _)| dag2.find(n).unwrap()).collect();
    assert!(dagprio::graph::topo::is_linear_extension(&dag2, &replayed));
}

#[test]
fn prio_on_meshes_is_ic_optimal() {
    // The decomposition peels a 2-D mesh diagonal by diagonal, recovering
    // the theory's known IC-optimal schedule (Rosenberg's mesh result).
    use dagprio::core::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};
    use dagprio::workloads::mesh::{mesh2d, mesh_triangle};
    for dag in [mesh2d(3, 3), mesh2d(2, 5), mesh_triangle(4)] {
        let res = prioritize(&dag).unwrap();
        assert_eq!(
            is_ic_optimal(&dag, res.schedule.order(), DEFAULT_STATE_LIMIT),
            Some(true),
            "PRIO must be IC-optimal on {dag:?}"
        );
    }
}

#[test]
fn theoretical_algorithm_succeeds_on_meshes_and_matches_optimality() {
    use dagprio::core::optimal::{is_ic_optimal, DEFAULT_STATE_LIMIT};
    use dagprio::core::theoretical::theoretical_schedule;
    use dagprio::workloads::mesh::mesh2d;
    let dag = mesh2d(3, 3);
    let theo = theoretical_schedule(&dag).expect("meshes are theory-schedulable");
    assert_eq!(
        is_ic_optimal(&dag, theo.schedule.order(), DEFAULT_STATE_LIMIT),
        Some(true)
    );
}

#[test]
fn theoretical_fails_on_inspiral_but_heuristic_handles_it() {
    use dagprio::core::theoretical::{theoretical_schedule, TheoreticalFailure};
    let dag = inspiral(InspiralParams {
        pre_width: 3,
        ring_k: 4,
        post_width: 3,
    });
    match theoretical_schedule(&dag) {
        Err(TheoreticalFailure::DecompositionFailed { .. }) => {}
        other => panic!("the entangled ring must defeat the theory: {other:?}"),
    }
    assert!(prioritize(&dag).unwrap().schedule.is_valid_for(&dag));
}

#[test]
fn shortcutted_workload_still_schedules_correctly() {
    // Add shortcut arcs over an AIRSN and verify they are stripped and the
    // schedule is unchanged (shortcuts never affect eligibility).
    let base = airsn(8);
    let mut b = dagprio::graph::DagBuilder::new();
    for u in base.node_ids() {
        b.add_node(base.label(u));
    }
    for (u, v) in base.arcs() {
        b.add_arc(u, v).unwrap();
    }
    // handle0 -> join2 is implied by the umbrella; add it as a shortcut.
    let h0 = base.find("handle0").unwrap();
    let j2 = base.find("join2").unwrap();
    b.add_arc(h0, j2).unwrap();
    let shortcutted = b.build().unwrap();

    let res_base = prioritize(&base).unwrap();
    let res_cut = prioritize(&shortcutted).unwrap();
    assert_eq!(res_cut.stats.shortcuts_removed, 1);
    assert_eq!(res_base.schedule.order(), res_cut.schedule.order());
}
