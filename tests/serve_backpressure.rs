//! Backpressure: a full request queue sheds with an explicit
//! `overloaded` response — never a hang, never an unbounded buffer — and
//! the shed count is visible everywhere it must be: the response stream,
//! the `stats` verb, the process-wide `serve.queue.shed` counter, and
//! the Prometheus exposition.
//!
//! This suite lives in its own integration-test binary (its own process
//! under `cargo test`) because it asserts on deltas of process-global
//! `serve.*` counters, which the other serve suites also bump.

use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dagprio::obs::json::{parse, JsonValue};
use dagprio::serve::{encode_control, encode_request, serve_streams, ServeConfig};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {v:?}"))
}

#[test]
fn full_queue_sheds_and_the_shed_count_shows_everywhere() {
    let shed_before = dagprio::obs::counter("serve.queue.shed").get();

    // Capacity 2 and a single deliberately slow worker: the reader
    // ingests the pipelined burst far faster than the worker drains it,
    // so most of the burst must be shed. The `stats` verb is answered
    // inline *after* the burst lines (line order on one connection), by
    // which point every shed has already been counted.
    const BURST: u64 = 10;
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 2,
        worker_delay: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let mut lines: Vec<String> = (0..BURST)
        .map(|i| encode_request(&format!("r{i}"), "a\tb\nb\tc\n", Some("edges"), None))
        .collect();
    lines.push(encode_control("stats", "stats"));

    let buf = SharedBuf::default();
    let input = lines.join("\n") + "\n";
    let stats = serve_streams(Cursor::new(input), Box::new(buf.clone()), config);

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let responses: Vec<JsonValue> = text.lines().map(|l| parse(l).unwrap()).collect();

    // Every request got exactly one response — nothing hung, nothing
    // was dropped; the excess was answered `overloaded`.
    assert_eq!(responses.len() as u64, BURST + 1, "{text}");
    let overloaded = responses
        .iter()
        .filter(|v| v.get("status").and_then(JsonValue::as_str) == Some("overloaded"))
        .count() as u64;
    let ok = responses
        .iter()
        .filter(|v| {
            v.get("status").and_then(JsonValue::as_str) == Some("ok") && v.get("output").is_some()
        })
        .count() as u64;
    assert_eq!(ok + overloaded, BURST, "every burst request resolved");
    // Worker holds one job; the queue holds two; the reader outruns the
    // 150ms-per-job worker by orders of magnitude, so at most a handful
    // of jobs were accepted and the rest shed.
    assert!(
        overloaded >= BURST - 4,
        "expected most of the burst shed, got {overloaded} of {BURST}"
    );

    // The shed surfaces in the server's own accounting...
    assert_eq!(stats.shed, overloaded, "final stats match the responses");
    assert_eq!(stats.ok, ok);
    // ...in the stats verb (answered inline after the whole burst)...
    let stats_verb = responses
        .iter()
        .find(|v| v.get("id").and_then(JsonValue::as_str) == Some("stats"))
        .expect("stats verb answered");
    assert_eq!(u64_field(stats_verb, "shed"), overloaded);
    assert_eq!(u64_field(stats_verb, "queue_capacity"), 2);
    // ...in the process-wide counter...
    let shed_after = dagprio::obs::counter("serve.queue.shed").get();
    assert_eq!(shed_after - shed_before, overloaded);
    // ...and in the Prometheus exposition of that counter.
    let prom = dagprio::obs::prom::render_snapshot();
    let line = prom
        .lines()
        .find(|l| l.starts_with("prio_serve_queue_shed "))
        .expect("serve.queue.shed exposed to Prometheus");
    let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(value >= overloaded, "{line}");
}

/// Control verbs bypass the queue entirely: with the queue saturated by
/// a slow worker, `ping` and `stats` still answer immediately.
#[test]
fn control_verbs_answer_inline_while_the_queue_is_saturated() {
    let config = ServeConfig {
        threads: 1,
        queue_capacity: 2,
        worker_delay: Duration::from_millis(100),
        ..ServeConfig::default()
    };
    let lines = [
        encode_request("w1", "a\tb\n", Some("edges"), None),
        encode_request("w2", "a\tb\n", Some("edges"), None),
        encode_request("w3", "a\tb\n", Some("edges"), None),
        encode_control("p", "ping"),
        encode_control("s", "stats"),
    ];
    let buf = SharedBuf::default();
    let input = lines.join("\n") + "\n";
    let stats = serve_streams(Cursor::new(input), Box::new(buf.clone()), config);
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let responses: Vec<JsonValue> = text.lines().map(|l| parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 5, "{text}");
    let pong = responses
        .iter()
        .find(|v| v.get("id").and_then(JsonValue::as_str) == Some("p"))
        .expect("ping answered");
    assert_eq!(pong.get("pong").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(stats.received, 5);
    assert_eq!(stats.ok + stats.shed, 3, "all work requests resolved");
}
