//! Concurrency soak: several client threads hammer one daemon over TCP
//! with a duplicate-heavy request mix, and the protocol invariants hold
//! under contention — every id answered exactly once, no response lost
//! or duplicated, the cache absorbs the duplicates, and the graceful
//! shutdown drains everything it accepted.
//!
//! Time-boxed to a few seconds and `#[ignore]`d by default; `check.sh`
//! runs it in release mode under `PRIO_BENCH_CHECK=1`:
//!
//! ```text
//! cargo test --release --test serve_soak -- --ignored
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use dagprio::serve::{encode_control, encode_request, ServeConfig, Server};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 1500;
/// Every `FRESH_EVERY`-th request per client is a never-seen-before dag
/// (a guaranteed cold miss); the rest round-robin a small shared pool.
const FRESH_EVERY: usize = 50;
const POOL: usize = 8;

/// A small edge-list dag, salted so distinct `salt`s are distinct dags.
fn dag_text(salt: usize) -> String {
    let mut text = String::new();
    for i in 0..10 {
        text.push_str(&format!("s{salt}n{i}\ts{salt}n{}\n", i + 1));
    }
    text.push_str(&format!("s{salt}n0\ts{salt}n5\n"));
    text
}

#[test]
#[ignore = "soak test: run by check.sh under PRIO_BENCH_CHECK=1"]
fn soak_duplicate_heavy_mix_loses_and_duplicates_nothing() {
    let config = ServeConfig {
        threads: 2,
        // At least CLIENTS * REQUESTS_PER_CLIENT, so even the worst-case
        // backlog can never shed: lost-vs-shed must not be conflated,
        // and shedding has its own dedicated suite.
        queue_capacity: CLIENTS * REQUESTS_PER_CLIENT,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let pool: Vec<String> = (0..POOL).map(dag_text).collect();

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let read_half = stream.try_clone().unwrap();
                // A dedicated reader drains responses concurrently with
                // the writes, so the soak actually pipelines instead of
                // degenerating into lock-step request/response.
                let reader = std::thread::spawn(move || {
                    let mut seen: HashMap<String, u32> = HashMap::new();
                    let mut reader = BufReader::new(read_half);
                    let mut line = String::new();
                    for _ in 0..REQUESTS_PER_CLIENT {
                        line.clear();
                        let n = reader.read_line(&mut line).unwrap();
                        assert!(n > 0, "daemon closed the connection early");
                        let id_at = line.find("\"id\":\"").expect("response has id") + 6;
                        let id_end = id_at + line[id_at..].find('"').unwrap();
                        *seen.entry(line[id_at..id_end].to_owned()).or_insert(0) += 1;
                        assert!(
                            line.contains("\"status\":\"ok\""),
                            "soak requests must all succeed: {line}"
                        );
                    }
                    seen
                });
                let mut out = std::io::BufWriter::new(stream);
                for i in 0..REQUESTS_PER_CLIENT {
                    let id = format!("c{c}-{i}");
                    let line = if i % FRESH_EVERY == FRESH_EVERY - 1 {
                        // A dag no connection has ever sent before.
                        encode_request(&id, &dag_text(1000 + c * 1000 + i), Some("edges"), None)
                    } else {
                        let text = &pool[(i * 7 + c) % POOL];
                        encode_request(&id, text, Some("edges"), None)
                    };
                    out.write_all(line.as_bytes()).unwrap();
                    out.write_all(b"\n").unwrap();
                }
                out.flush().unwrap();
                reader.join().unwrap()
            })
        })
        .collect();

    let mut total_ok = 0u64;
    for (c, client) in clients.into_iter().enumerate() {
        let seen = client.join().unwrap();
        // Exactly one response per id: none lost (the reader counted out
        // REQUESTS_PER_CLIENT lines), none duplicated, none misrouted
        // from another connection.
        assert_eq!(
            seen.len(),
            REQUESTS_PER_CLIENT,
            "client {c}: ids lost or misrouted"
        );
        for (id, count) in &seen {
            assert_eq!(*count, 1, "client {c}: id {id} answered {count} times");
            assert!(
                id.starts_with(&format!("c{c}-")),
                "client {c}: foreign id {id}"
            );
        }
        total_ok += seen.len() as u64;
    }

    // Graceful shutdown: a control connection asks, and the drain keeps
    // every already-accepted response (asserted above by counting them).
    let control = TcpStream::connect(addr).unwrap();
    (&control)
        .write_all((encode_control("q", "shutdown") + "\n").as_bytes())
        .unwrap();
    let mut line = String::new();
    BufReader::new(&control).read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\":true"), "{line}");
    let stats = server.wait();

    assert_eq!(total_ok, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(stats.ok, total_ok, "daemon accounting matches the clients'");
    assert_eq!(stats.shed, 0, "the soak is sized to never shed");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.queue_depth, 0, "shutdown drained the queue");

    // The duplicate-heavy mix must be absorbed by the cache: only the
    // pool dags and the deliberate fresh dags can miss, plus at most a
    // handful of same-dag races between the two workers.
    let hits = stats.cache.hits;
    let misses = stats.cache.misses;
    assert_eq!(
        hits + misses,
        total_ok,
        "each ok request is one hit or one miss"
    );
    let hit_ratio = hits as f64 / (hits + misses) as f64;
    assert!(
        hit_ratio >= 0.90,
        "cache hit ratio {hit_ratio:.4} below the soak floor (hits {hits}, misses {misses})"
    );
}
