//! Parallel-vs-serial bit-identity properties.
//!
//! Every parallel path in the front half of the pipeline — CSR assembly,
//! transitive reduction, decomposition, and the two DAGMan parse paths —
//! promises results *bit-identical* to its serial twin for every thread
//! count. The properties here hold that promise on random dags and
//! catalog-family compositions; the `*_at_scale` tests additionally cross
//! the adaptive work thresholds so the sharded code paths (not just their
//! serial fallbacks) are the ones being compared.

use dagprio::core::decompose::{decompose_in, DecomposeOptions, Decomposition};
use dagprio::core::prio::{PrioOptions, Prioritizer};
use dagprio::dagman::{parse_dagman, parse_dagman_threads, parse_dagman_to_dag};
use dagprio::graph::reduction::{shortcut_arcs_into, shortcut_arcs_par_into};
use dagprio::graph::{Dag, GraphScratch, Label, NodeId, ScratchArena};
use proptest::prelude::*;

/// Random DAG strategy: arcs only between `i < j`.
fn arb_dag(max_n: usize, density: f64) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(density), k).prop_map(move |mask| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&p, _)| p)
                .collect();
            Dag::from_arcs(n, &arcs).unwrap()
        })
    })
}

/// Random series composition of catalog-family blocks — the workload
/// shape the decomposition's fast path is built for.
fn arb_composed() -> impl Strategy<Value = Dag> {
    use dagprio::core::families::Family;
    use dagprio::graph::compose::series_zip;
    let fam = prop_oneof![
        (1usize..=3, 2usize..=3).prop_map(|(s, d)| Family::W { s, d }),
        (1usize..=2, 2usize..=3).prop_map(|(s, d)| Family::M { s, d }),
        (2usize..=4).prop_map(|d| Family::N { d }),
        (3usize..=4).prop_map(|d| Family::Cycle { d }),
        (1usize..=3, 1usize..=3).prop_map(|(s, t)| Family::Clique { s, t }),
    ];
    proptest::collection::vec(fam, 2..=3).prop_map(|fams| {
        let mut dag = fams[0].instantiate().0;
        for f in &fams[1..] {
            dag = series_zip(&dag, &f.instantiate().0).expect("zip composition");
        }
        dag
    })
}

/// The arc list of `dag` in a scrambled (reverse) order, as `assemble`
/// input — the constructor must sort it back itself.
fn scrambled_arcs(dag: &Dag) -> Vec<(NodeId, NodeId)> {
    let mut arcs: Vec<(NodeId, NodeId)> = dag.arcs().collect();
    arcs.reverse();
    arcs
}

fn labels_of(dag: &Dag) -> Vec<Label> {
    dag.node_ids().map(|u| Label::from(dag.label(u))).collect()
}

fn assert_decompositions_equal(a: &Decomposition, b: &Decomposition) {
    assert_eq!(a.comp_removed, b.comp_removed);
    assert_eq!(a.general_search_iterations, b.general_search_iterations);
    assert_eq!(a.superdag, b.superdag);
    assert_eq!(a.parts.len(), b.parts.len());
    for (pa, pb) in a.parts.iter().zip(&b.parts) {
        assert_eq!(pa.nodes, pb.nodes);
        assert_eq!(pa.removed, pb.removed);
        assert_eq!(pa.local, pb.local);
        assert_eq!(pa.bipartite, pb.bipartite);
        assert_eq!(pa.via_fast_path, pb.via_fast_path);
    }
}

/// Renders `dag` as DAGMan text (JOB declarations in id order, one
/// PARENT statement per non-sink).
fn to_dagman_text(dag: &Dag) -> String {
    let mut text = String::new();
    for u in dag.node_ids() {
        text.push_str(&format!("JOB {} {}.sub\n", dag.label(u), dag.label(u)));
    }
    for u in dag.node_ids() {
        if dag.children(u).is_empty() {
            continue;
        }
        text.push_str(&format!("PARENT {} CHILD", dag.label(u)));
        for &v in dag.children(u) {
            text.push_str(&format!(" {}", dag.label(v)));
        }
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR assembly is thread-count invariant (including offset arrays and
    /// both adjacency directions, via `Dag`'s structural equality).
    #[test]
    fn assemble_is_thread_count_invariant(dag in arb_dag(24, 0.25)) {
        let serial = Dag::assemble(labels_of(&dag), scrambled_arcs(&dag), 0).unwrap();
        for threads in [1, 2, 4] {
            let par = Dag::assemble(labels_of(&dag), scrambled_arcs(&dag), threads).unwrap();
            prop_assert_eq!(&par, &serial);
        }
        prop_assert_eq!(&serial, &dag);
    }

    /// The sharded transitive-reduction scan finds exactly the serial
    /// shortcut set, in the same order.
    #[test]
    fn parallel_reduction_matches_serial(dag in arb_dag(24, 0.3)) {
        let mut scratch = GraphScratch::new();
        let mut serial = Vec::new();
        shortcut_arcs_into(&dag, &mut scratch, &mut serial);
        for threads in [2, 3, 4] {
            let mut par = Vec::new();
            shortcut_arcs_par_into(&dag, &mut scratch, threads, &mut par);
            prop_assert_eq!(&par, &serial, "threads={}", threads);
        }
    }

    /// The decomposition — peel order, part contents, local dags,
    /// superdag — is thread-count invariant on random dags.
    #[test]
    fn parallel_decompose_matches_serial(dag in arb_dag(20, 0.25)) {
        let opts = DecomposeOptions::default();
        let serial = decompose_in(&dag, opts, 0, &mut ScratchArena::new());
        for threads in [2, 4] {
            let par = decompose_in(&dag, opts, threads, &mut ScratchArena::new());
            assert_decompositions_equal(&par, &serial);
        }
    }

    /// Same, on the catalog-family compositions the fast path detaches.
    #[test]
    fn parallel_decompose_matches_serial_on_compositions(dag in arb_composed()) {
        let opts = DecomposeOptions::default();
        let serial = decompose_in(&dag, opts, 0, &mut ScratchArena::new());
        let par = decompose_in(&dag, opts, 4, &mut ScratchArena::new());
        assert_decompositions_equal(&par, &serial);
    }

    /// End to end: the full pipeline's schedule and priorities are
    /// bit-identical for every thread count.
    #[test]
    fn prioritize_is_thread_count_invariant(dag in arb_dag(20, 0.25)) {
        let run = |threads: usize| {
            Prioritizer::with_options(PrioOptions { threads, ..PrioOptions::default() })
                .prioritize(&dag)
                .unwrap()
                .schedule
        };
        let serial = run(0);
        for threads in [1, 4] {
            prop_assert_eq!(&run(threads), &serial, "threads={}", threads);
        }
    }

    /// Both DAGMan front doors — the AST path and the zero-copy direct
    /// path — produce the same dag, at every thread count.
    #[test]
    fn dagman_parse_paths_agree(dag in arb_dag(16, 0.3)) {
        let text = to_dagman_text(&dag);
        let ast = parse_dagman(&text).unwrap().to_dag().unwrap();
        let chunked = parse_dagman_threads(&text, 4).unwrap().to_dag().unwrap();
        prop_assert_eq!(&chunked, &ast);
        for threads in [0, 1, 3] {
            let direct = parse_dagman_to_dag(&text, threads).unwrap();
            prop_assert_eq!(&direct, &ast, "threads={}", threads);
        }
    }
}

/// A deterministic layered dag big enough to cross every adaptive
/// parallelism threshold (`MIN_PARALLEL_ARCS` = 2¹⁶ arcs for the CSR
/// build, `PARALLEL_WORK_THRESHOLD` = 2·10⁴ for materialization).
fn scale_dag() -> Dag {
    const WIDTH: usize = 60;
    const LAYERS: usize = 900;
    let n = WIDTH * LAYERS;
    let mut arcs: Vec<(u32, u32)> = Vec::new();
    for l in 0..LAYERS - 1 {
        for i in 0..WIDTH {
            let u = (l * WIDTH + i) as u32;
            arcs.push((u, ((l + 1) * WIDTH + i) as u32));
            if i % 3 == 0 {
                arcs.push((u, ((l + 1) * WIDTH + (i + 11) % WIDTH) as u32));
            }
        }
    }
    Dag::from_arcs(n, &arcs).unwrap()
}

/// Above `MIN_PARALLEL_ARCS` the sharded CSR build actually runs (not its
/// serial fallback) — and still matches the serial arrays exactly.
#[test]
fn parallel_csr_build_bit_identical_at_scale() {
    let dag = scale_dag();
    assert!(dag.num_arcs() > 1 << 16, "must cross MIN_PARALLEL_ARCS");
    let serial = Dag::assemble(labels_of(&dag), scrambled_arcs(&dag), 0).unwrap();
    let par = Dag::assemble(labels_of(&dag), scrambled_arcs(&dag), 4).unwrap();
    assert_eq!(par, serial);
}

/// The four scientific workloads at a reduced-but-structural scale:
/// every stage — CSR assembly, reduction, decomposition, the full
/// pipeline — is thread-count invariant on each of them.
#[test]
fn workload_suite_is_thread_count_invariant() {
    for w in dagprio::workloads::scaled_suite(0.25) {
        let dag = w.dag();

        let serial = Dag::assemble(labels_of(dag), scrambled_arcs(dag), 0).unwrap();
        let par = Dag::assemble(labels_of(dag), scrambled_arcs(dag), 4).unwrap();
        assert_eq!(par, serial, "{}: assemble diverged", w.name);

        let mut scratch = GraphScratch::new();
        let mut shortcuts_serial = Vec::new();
        shortcut_arcs_into(dag, &mut scratch, &mut shortcuts_serial);
        let mut shortcuts_par = Vec::new();
        shortcut_arcs_par_into(dag, &mut scratch, 4, &mut shortcuts_par);
        assert_eq!(
            shortcuts_par, shortcuts_serial,
            "{}: reduction diverged",
            w.name
        );

        let opts = DecomposeOptions::default();
        let dec_serial = decompose_in(dag, opts, 0, &mut ScratchArena::new());
        let dec_par = decompose_in(dag, opts, 4, &mut ScratchArena::new());
        assert_decompositions_equal(&dec_par, &dec_serial);

        let run = |threads: usize| {
            Prioritizer::with_options(PrioOptions {
                threads,
                ..PrioOptions::default()
            })
            .prioritize(dag)
            .unwrap()
            .schedule
        };
        assert_eq!(run(4), run(0), "{}: pipeline diverged", w.name);
    }
}

/// Above `PARALLEL_WORK_THRESHOLD` the decomposition materializes parts
/// on worker threads — placed by index, so the result is still identical.
#[test]
fn parallel_decompose_bit_identical_at_scale() {
    let dag = scale_dag();
    assert!(
        dag.num_nodes() > 20_000,
        "must cross PARALLEL_WORK_THRESHOLD"
    );
    let opts = DecomposeOptions::default();
    let serial = decompose_in(&dag, opts, 0, &mut ScratchArena::new());
    let par = decompose_in(&dag, opts, 4, &mut ScratchArena::new());
    assert_decompositions_equal(&par, &serial);
}
