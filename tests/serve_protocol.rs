//! Protocol robustness: every way a client can misbehave — malformed
//! JSON, oversized lines, unknown verbs, mid-request disconnects, mixed
//! schema versions — produces a structured error response with
//! `PrioError`-style provenance, and never kills the daemon, hangs a
//! connection, or poisons a worker's scratch context.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};

use dagprio::obs::json::{parse, JsonValue, SCHEMA_VERSION};
use dagprio::serve::{
    encode_control, encode_request, serve_streams, ServeConfig, ServeStats, Server,
};

/// A writer handing the daemon's output back through a shared buffer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Serves `lines` on a fresh in-process daemon; returns the raw response
/// lines (in arrival order) and the final statistics.
fn serve_lines(lines: &[String], config: ServeConfig) -> (Vec<String>, ServeStats) {
    let buf = SharedBuf::default();
    let input = lines.join("\n") + "\n";
    let stats = serve_streams(Cursor::new(input), Box::new(buf.clone()), config);
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("responses are UTF-8");
    (text.lines().map(str::to_owned).collect(), stats)
}

fn parsed(lines: &[String]) -> Vec<JsonValue> {
    lines
        .iter()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("unparseable response {l:?}: {e}")))
        .collect()
}

fn by_id(lines: &[String]) -> BTreeMap<String, JsonValue> {
    parsed(lines)
        .into_iter()
        .filter_map(|v| {
            let id = v.get("id").and_then(JsonValue::as_str)?.to_owned();
            Some((id, v))
        })
        .collect()
}

fn str_field<'v>(v: &'v JsonValue, key: &str) -> &'v str {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?} in {v:?}"))
}

/// Malformed JSON lines each earn one structured error (with no id,
/// since none was recoverable) and the daemon goes on to serve the next
/// valid request on the same connection.
#[test]
fn malformed_json_is_a_structured_error_not_a_crash() {
    let lines = vec![
        "{{{".to_owned(),
        "[1,2,3]".to_owned(),
        "\"just a string\"".to_owned(),
        r#"{"verb":"stats"}"#.to_owned(), // object but no id
        encode_request("good", "a\tb\n", Some("edges"), None),
    ];
    let (out, stats) = serve_lines(&lines, ServeConfig::default());
    assert_eq!(out.len(), 5);
    assert_eq!((stats.received, stats.ok, stats.errors), (5, 1, 4));
    let responses = parsed(&out);
    for v in &responses[..4] {
        assert_eq!(str_field(v, "status"), "error");
        assert_eq!(str_field(v, "stage"), "request");
        assert!(v.get("id").is_none(), "no id was recoverable: {v:?}");
        assert!(str_field(v, "error").starts_with("request:"));
    }
    let good = &by_id(&out)["good"];
    assert_eq!(str_field(good, "status"), "ok");
}

/// An oversized request line is rejected with a structured error that
/// names the limit, the line is discarded without being buffered, and
/// the requests after it are served normally.
#[test]
fn oversized_requests_are_bounded_and_rejected() {
    let config = ServeConfig {
        max_request_bytes: 2048,
        ..ServeConfig::default()
    };
    let big = encode_request("big", &"x\ty\n".repeat(10_000), Some("edges"), None);
    assert!(big.len() > config.max_request_bytes);
    let lines = vec![big, encode_request("ok", "a\tb\n", Some("edges"), None)];
    let (out, stats) = serve_lines(&lines, config);
    assert_eq!(out.len(), 2);
    let responses = parsed(&out);
    assert_eq!(str_field(&responses[0], "status"), "error");
    assert!(
        str_field(&responses[0], "error").contains("max request bytes (2048)"),
        "{responses:?}"
    );
    assert_eq!(str_field(&by_id(&out)["ok"], "status"), "ok");
    assert_eq!((stats.ok, stats.errors), (1, 1));
}

/// Unknown verbs and missing required fields are per-request errors that
/// echo the id when one parsed, and the connection stays usable.
#[test]
fn unknown_verbs_and_missing_fields_keep_the_id() {
    let lines = vec![
        r#"{"type":"request","id":"v1","verb":"explode"}"#.to_owned(),
        r#"{"type":"request","id":"v2","verb":"prioritize"}"#.to_owned(), // no workflow
        encode_control("p", "ping"),
    ];
    let (out, stats) = serve_lines(&lines, ServeConfig::default());
    let map = by_id(&out);
    assert_eq!(str_field(&map["v1"], "status"), "error");
    assert!(
        str_field(&map["v1"], "error").contains("unknown verb \"explode\""),
        "{:?}",
        map["v1"]
    );
    assert_eq!(str_field(&map["v2"], "status"), "error");
    assert!(str_field(&map["v2"], "error").contains("workflow"));
    assert_eq!(str_field(&map["p"], "status"), "ok");
    // `ok` counts prioritize work only; the inline pong is not work.
    assert_eq!((stats.received, stats.ok, stats.errors), (3, 0, 2));
}

/// Version handling mirrors the JSONL stream contract: a record tagged
/// newer than this build is rejected, two different explicit versions on
/// one connection are rejected per-record — and matching records around
/// them keep working.
#[test]
fn mixed_and_future_schema_versions_are_per_record_errors() {
    let v = SCHEMA_VERSION;
    let lines = vec![
        format!(r#"{{"type":"request","id":"a","verb":"ping","v":{v}}}"#),
        format!(
            r#"{{"type":"request","id":"b","verb":"ping","v":{}}}"#,
            v - 1
        ),
        format!(r#"{{"type":"request","id":"c","verb":"ping","v":{v}}}"#),
        format!(
            r#"{{"type":"request","id":"d","verb":"ping","v":{}}}"#,
            v + 1
        ),
    ];
    let (out, stats) = serve_lines(&lines, ServeConfig::default());
    let map = by_id(&out);
    assert_eq!(str_field(&map["a"], "status"), "ok");
    assert_eq!(str_field(&map["b"], "status"), "error");
    assert!(str_field(&map["b"], "error").contains("mixed schema versions"));
    assert_eq!(
        str_field(&map["c"], "status"),
        "ok",
        "sticky version survives"
    );
    assert_eq!(str_field(&map["d"], "status"), "error");
    assert!(str_field(&map["d"], "error").contains("newer than supported"));
    assert_eq!((stats.received, stats.errors), (4, 2));
}

/// Pipeline failures carry their stage provenance onto the wire, and —
/// with a single worker, so the same `PrioContext` serves every request —
/// a failed request does not perturb the one after it.
#[test]
fn pipeline_errors_have_provenance_and_do_not_poison_the_worker() {
    let reference = dagprio::prioritize_workflow_text("a\tb\nb\tc\n", None, Some("edges"))
        .unwrap()
        .1;
    let lines = vec![
        // A dagman parse error (line provenance)...
        encode_request("parse", "JOB broken", Some("dagman"), None),
        // ...a cyclic edge list (graph-build failure)...
        encode_request("cycle", "a\tb\nb\ta\n", Some("edges"), None),
        // ...an unregistered format name...
        encode_request("fmt", "a\tb\n", Some("nope"), None),
        // ...then a normal request through the very same worker context.
        encode_request("good", "a\tb\nb\tc\n", Some("edges"), None),
    ];
    let config = ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    };
    let (out, stats) = serve_lines(&lines, config);
    let map = by_id(&out);
    for id in ["parse", "cycle", "fmt"] {
        assert_eq!(str_field(&map[id], "status"), "error", "{id}");
        assert!(
            !str_field(&map[id], "stage").is_empty(),
            "{id}: errors carry stage provenance"
        );
    }
    assert_eq!(str_field(&map["parse"], "stage"), "parse");
    assert!(str_field(&map["fmt"], "error").contains("unknown format"));
    assert_eq!(str_field(&map["good"], "status"), "ok");
    assert_eq!(
        str_field(&map["good"], "output"),
        reference,
        "the worker context must be unaffected by the failed requests before it"
    );
    assert_eq!((stats.ok, stats.errors), (1, 3));
}

/// A client that disconnects mid-request (an unterminated line, then a
/// dead socket) neither kills the daemon nor wedges it: a fresh
/// connection right after is served normally, and the graceful shutdown
/// still completes.
#[test]
fn mid_request_disconnect_leaves_the_daemon_serving() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    // Connection 1: half a request, no newline, then vanish. The daemon
    // treats the fragment as a line (it cannot tell a disconnect from a
    // short write), fails to respond to the dead socket, and moves on.
    {
        let partial = TcpStream::connect(addr).unwrap();
        (&partial)
            .write_all(br#"{"type":"request","id":"gone","verb":"prior"#)
            .unwrap();
        partial.shutdown(Shutdown::Both).unwrap();
    }

    // Connection 2: a normal session must work immediately afterwards.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let send = |line: &str| {
        (&stream).write_all(line.as_bytes()).unwrap();
        (&stream).write_all(b"\n").unwrap();
    };
    send(&encode_request("alive", "a\tb\n", Some("edges"), None));
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = parse(&line).unwrap();
    assert_eq!(str_field(&v, "id"), "alive");
    assert_eq!(str_field(&v, "status"), "ok");

    send(&encode_control("q", "shutdown"));
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"shutdown\":true"), "{line}");

    let stats = server.wait();
    assert_eq!(stats.ok, 1);
    assert!(
        stats.errors >= 1,
        "the severed fragment should have been counted as an error: {stats:?}"
    );
}
