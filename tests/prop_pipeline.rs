//! Property-based tests of the full scheduling pipeline on random DAGs.
//!
//! Note which properties are *not* asserted, because the paper's heuristic
//! does not guarantee them: PRIO can be cumulatively worse than FIFO on
//! adversarial irregular bipartite blocks (the out-degree fallback is a
//! heuristic), and the fast-path and general decompositions may detach the
//! same blocks in different orders (both orders are valid). What *is*
//! guaranteed — and checked here — is that every configuration produces a
//! valid schedule for every dag, that non-sinks always run before sinks,
//! and that the two combine engines implement the same selection rule.

use dagprio::core::combine::CombineEngine;
use dagprio::core::decompose::DecomposeOptions;
use dagprio::core::eligibility::eligibility_profile;
use dagprio::core::fifo::fifo_schedule;
use dagprio::core::prio::{prioritize, PrioOptions, Prioritizer};
use dagprio::graph::Dag;
use proptest::prelude::*;

/// Random DAG strategy: arcs only between `i < j`.
fn arb_dag(max_n: usize, density: f64) -> impl Strategy<Value = Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(density), k).prop_map(move |mask| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&p, _)| p)
                .collect();
            Dag::from_arcs(n, &arcs).unwrap()
        })
    })
}

/// Random series composition of 2–3 catalog-family blocks (sinks of one
/// glued to sources of the next) — dags "assembled in a uniform way",
/// the theory's home turf.
fn arb_composed() -> impl Strategy<Value = Dag> {
    use dagprio::core::families::Family;
    use dagprio::graph::compose::series_zip;
    let fam = prop_oneof![
        (1usize..=3, 2usize..=3).prop_map(|(s, d)| Family::W { s, d }),
        (1usize..=2, 2usize..=3).prop_map(|(s, d)| Family::M { s, d }),
        (2usize..=4).prop_map(|d| Family::N { d }),
        (3usize..=4).prop_map(|d| Family::Cycle { d }),
        (1usize..=3, 1usize..=3).prop_map(|(s, t)| Family::Clique { s, t }),
    ];
    proptest::collection::vec(fam, 2..=3).prop_map(|fams| {
        let mut dag = fams[0].instantiate().0;
        for f in &fams[1..] {
            dag = series_zip(&dag, &f.instantiate().0).expect("zip composition");
        }
        dag
    })
}

/// Random connected-ish bipartite dag: `s` sources, `t` sinks, each sink
/// gets at least one parent.
fn arb_bipartite(max_side: usize, min_side: usize) -> impl Strategy<Value = Dag> {
    ((min_side..=max_side), (min_side..=max_side)).prop_flat_map(|(s, t)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), s), t).prop_map(
            move |rows| {
                let mut arcs = Vec::new();
                for (j, row) in rows.iter().enumerate() {
                    let mut any_parent = false;
                    for (i, &bit) in row.iter().enumerate() {
                        if bit {
                            arcs.push((i as u32, (s + j) as u32));
                            any_parent = true;
                        }
                    }
                    if !any_parent {
                        arcs.push(((j % s) as u32, (s + j) as u32));
                    }
                }
                Dag::from_arcs(s + t, &arcs).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The heuristic must produce a valid schedule for EVERY dag — the
    /// core promise that distinguishes it from the theoretical algorithm.
    #[test]
    fn prio_is_always_a_linear_extension(dag in arb_dag(28, 0.2)) {
        let res = prioritize(&dag).unwrap();
        prop_assert!(res.schedule.is_valid_for(&dag));
        // Stats are consistent.
        let s = &res.stats;
        prop_assert_eq!(
            s.num_components,
            s.recognized.values().sum::<usize>() + s.searched + s.heuristic_scheduled + s.trivial
        );
    }

    #[test]
    fn prio_is_always_valid_on_dense_dags(dag in arb_dag(16, 0.6)) {
        let res = prioritize(&dag).unwrap();
        prop_assert!(res.schedule.is_valid_for(&dag));
    }

    /// Every engineering configuration yields a valid schedule; the two
    /// combine engines (on the same decomposition) yield the *same* one.
    #[test]
    fn engines_agree_and_all_configurations_are_valid(dag in arb_dag(20, 0.25)) {
        let default = prioritize(&dag).unwrap().schedule;
        let make = |fast: bool, engine: CombineEngine| {
            Prioritizer::with_options(PrioOptions {
                decompose: DecomposeOptions { fast_path: fast },
                engine,
                optimal_search_limit: 0,
                threads: 0,
            })
            .prioritize(&dag).unwrap()
            .schedule
        };
        let fast_naive = make(true, CombineEngine::Naive);
        prop_assert_eq!(&fast_naive, &default, "combine engines must agree");
        // The general-only decomposition may detach equal blocks in a
        // different order; both results must still be valid.
        let general = make(false, CombineEngine::ClassHeap);
        prop_assert!(general.is_valid_for(&dag));
        let general_naive = make(false, CombineEngine::Naive);
        prop_assert_eq!(&general_naive, &general, "combine engines must agree (general path)");
    }

    /// PRIO always executes every non-sink before any sink — the
    /// structural property the theory says IC-optimal schedules can
    /// always satisfy, and which the heuristic enforces by construction.
    #[test]
    fn nonsinks_run_before_sinks(dag in arb_dag(24, 0.25)) {
        let res = prioritize(&dag).unwrap();
        let mut seen_sink = false;
        for &u in res.schedule.order() {
            if dag.is_sink(u) {
                seen_sink = true;
            } else {
                prop_assert!(!seen_sink, "non-sink {u:?} scheduled after a sink");
            }
        }
    }

    /// Because of non-sinks-first, PRIO attains the global maximum of
    /// eligibility at the moment all non-sinks are done — FIFO generally
    /// does not.
    #[test]
    fn prio_maximal_at_the_nonsink_boundary(dag in arb_dag(24, 0.25)) {
        let num_nonsinks = dag.node_ids().filter(|&u| !dag.is_sink(u)).count();
        let num_sinks = dag.num_nodes() - num_nonsinks;
        let prio = prioritize(&dag).unwrap().schedule;
        let fifo = fifo_schedule(&dag);
        let ep = eligibility_profile(&dag, prio.order());
        let ef = eligibility_profile(&dag, fifo.order());
        prop_assert_eq!(ep[num_nonsinks], num_sinks);
        prop_assert!(ef[num_nonsinks] <= num_sinks);
    }

    /// On bipartite dags the pipeline reduces to: one or more bipartite
    /// blocks, sources scheduled first, all sinks last.
    #[test]
    fn bipartite_dags_schedule_sources_then_sinks(dag in arb_bipartite(12, 4)) {
        let res = prioritize(&dag).unwrap();
        prop_assert!(res.schedule.is_valid_for(&dag));
        prop_assert!(res.stats.num_bipartite >= 1);
        prop_assert_eq!(res.stats.heuristic_scheduled + res.stats.searched + res.stats.recognized.values().sum::<usize>() + res.stats.trivial, res.stats.num_components);
        let num_sources = dag.sources().count();
        for (i, &u) in res.schedule.order().iter().enumerate() {
            if i < num_sources {
                prop_assert!(dag.out_degree(u) > 0 || dag.num_arcs() == 0 || dag.is_source(u));
            }
        }
    }

    /// Prioritizing the transitive reduction directly gives the same
    /// schedule (Step 1 is idempotent).
    #[test]
    fn shortcut_removal_is_idempotent_in_the_pipeline(dag in arb_dag(18, 0.4)) {
        let reduced = dagprio::graph::reduction::transitive_reduction(&dag);
        let a = prioritize(&dag).unwrap().schedule;
        let b = prioritize(&reduced).unwrap().schedule;
        prop_assert_eq!(a, b);
    }

    /// The theory's theorem: whenever the theoretical algorithm succeeds,
    /// its output is IC-optimal. Verified against the exhaustive
    /// ideal-lattice oracle on small random dags.
    #[test]
    fn theoretical_success_implies_ic_optimality(dag in arb_dag(12, 0.3)) {
        use dagprio::core::optimal::is_ic_optimal;
        use dagprio::core::theoretical::theoretical_schedule;
        if let Ok(theo) = theoretical_schedule(&dag) {
            prop_assert!(theo.schedule.is_valid_for(&dag));
            if let Some(verdict) = is_ic_optimal(&dag, theo.schedule.order(), 500_000) {
                prop_assert!(verdict, "theoretical output not IC-optimal on {dag:?}");
            }
        }
    }

    /// The paper's "graceful" claim: the heuristic produces an IC-optimal
    /// schedule for every dag on which the (catalog-based) theoretical
    /// algorithm works.
    ///
    /// Our theoretical Step 3 is deliberately *stronger* than the paper's
    /// (it searches for IC-optimal orders beyond the explicit catalog), so
    /// gracefulness is asserted only when every component was scheduled
    /// from the catalog — exactly the paper's hypothesis. (There exist
    /// irregular bipartite blocks where the search finds an optimal order
    /// but the out-degree heuristic does not.)
    #[test]
    fn heuristic_is_graceful_on_catalog_schedulable_dags(dag in arb_dag(12, 0.3)) {
        use dagprio::core::optimal::is_ic_optimal;
        use dagprio::core::theoretical::theoretical_schedule;
        if theoretical_schedule(&dag).is_ok() {
            let heur = prioritize(&dag).unwrap();
            if heur.stats.heuristic_scheduled == 0 {
                if let Some(verdict) = is_ic_optimal(&dag, heur.schedule.order(), 500_000) {
                    prop_assert!(
                        verdict,
                        "heuristic not IC-optimal on a catalog-schedulable dag: {dag:?}"
                    );
                }
            }
        }
    }

    /// On dags assembled from catalog blocks in series, the heuristic's
    /// schedule is always valid and the theory's theorem holds whenever
    /// the theoretical algorithm succeeds on the composition.
    #[test]
    fn composed_family_blocks_behave(dag in arb_composed()) {
        use dagprio::core::optimal::is_ic_optimal;
        use dagprio::core::theoretical::theoretical_schedule;
        let heur = prioritize(&dag).unwrap();
        prop_assert!(heur.schedule.is_valid_for(&dag));
        if let Ok(theo) = theoretical_schedule(&dag) {
            prop_assert!(theo.schedule.is_valid_for(&dag));
            if let Some(verdict) = is_ic_optimal(&dag, theo.schedule.order(), 500_000) {
                prop_assert!(verdict, "theoretical suboptimal on composition {dag:?}");
            }
        }
    }
}
