//! Differential tests: every response the daemon produces is
//! byte-identical to the one-shot `prioritize_workflow_text` facade —
//! for every workload family, every frontend format, a cold and a warm
//! cache, and worker pools of 1 and 4 threads. A cache hit (or a
//! text-memo fast-path replay) must never change a single byte.

use std::collections::BTreeMap;
use std::io::{Cursor, Write};
use std::sync::{Arc, Mutex};

use dagprio::ir::Workflow;
use dagprio::obs::json::{parse, JsonValue};
use dagprio::serve::{encode_request, serve_streams, ServeConfig, ServeStats};
use dagprio::workloads::scaled_suite;
use proptest::prelude::*;

const FORMATS: [&str; 3] = ["dagman", "json", "edges"];

/// A writer handing the daemon's output back through a shared buffer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs one in-process daemon session over the given request lines and
/// returns the parsed responses keyed by id, plus the final statistics.
fn run_session(lines: &[String], config: ServeConfig) -> (BTreeMap<String, JsonValue>, ServeStats) {
    let buf = SharedBuf::default();
    let input = lines.join("\n") + "\n";
    let stats = serve_streams(Cursor::new(input), Box::new(buf.clone()), config);
    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("responses are UTF-8");
    let by_id = text
        .lines()
        .map(|line| {
            let v = parse(line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"));
            let id = v
                .get("id")
                .and_then(JsonValue::as_str)
                .expect("response has an id")
                .to_owned();
            (id, v)
        })
        .collect();
    (by_id, stats)
}

fn str_field<'v>(v: &'v JsonValue, key: &str) -> &'v str {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string field {key:?} in {v:?}"))
}

fn bool_field(v: &JsonValue, key: &str) -> bool {
    v.get(key)
        .and_then(JsonValue::as_bool)
        .unwrap_or_else(|| panic!("missing bool field {key:?} in {v:?}"))
}

/// Renders a workflow as *input* text in the named format (priorities
/// unset, exactly like a file a user would feed the tool).
fn input_text(workflow: &Workflow, format: &str) -> String {
    let reg = dagprio::dagman::registry();
    let frontend = reg
        .by_name(format)
        .unwrap_or_else(|| panic!("format {format:?} registered"));
    frontend.export(workflow, workflow.priorities())
}

/// The cold/warm differential at one (input text, format, thread count):
/// a fresh daemon serves the same request twice; both responses must be
/// byte-identical to the facade, and with a single worker exactly one of
/// the two is served from cache.
fn assert_cold_warm(label: &str, text: &str, format: &str, threads: usize) {
    let reference = dagprio::prioritize_workflow_text(text, None, Some(format))
        .unwrap_or_else(|e| panic!("{label}/{format}: facade failed: {e}"))
        .1;
    let lines = vec![
        encode_request("cold", text, Some(format), None),
        encode_request("warm", text, Some(format), None),
    ];
    let config = ServeConfig {
        threads,
        ..ServeConfig::default()
    };
    let (by_id, stats) = run_session(&lines, config);
    assert_eq!(by_id.len(), 2, "{label}/{format}/t{threads}");
    for id in ["cold", "warm"] {
        let v = &by_id[id];
        assert_eq!(
            str_field(v, "status"),
            "ok",
            "{label}/{format}/t{threads}/{id}"
        );
        assert_eq!(
            str_field(v, "format"),
            format,
            "{label}/{format}/t{threads}/{id}"
        );
        assert_eq!(
            str_field(v, "output"),
            reference,
            "{label}/{format}/t{threads}/{id}: served output differs from the one-shot facade"
        );
    }
    if threads == 1 {
        // A single worker serializes the pair: the first compute misses,
        // the replay hits. (With more workers the two may race and both
        // miss — byte identity must hold either way, asserted above.)
        let cached: Vec<bool> = ["cold", "warm"]
            .iter()
            .map(|id| bool_field(&by_id[*id], "cached"))
            .collect();
        assert_eq!(
            cached.iter().filter(|&&c| c).count(),
            1,
            "{label}/{format}: exactly one of an identical pair is cached, got {cached:?}"
        );
        assert_eq!(
            (stats.cache.hits, stats.cache.misses),
            (1, 1),
            "{label}/{format}"
        );
    }
    assert_eq!(
        (stats.ok, stats.errors),
        (2, 0),
        "{label}/{format}/t{threads}"
    );
}

/// Every scientific workload family × every frontend format × cold/warm
/// × 1 worker thread.
#[test]
fn families_and_formats_match_the_facade_single_worker() {
    for workload in scaled_suite(0.02) {
        for format in FORMATS {
            let text = input_text(&workload.workflow, format);
            assert_cold_warm(workload.name, &text, format, 1);
        }
    }
}

/// The same matrix with a 4-worker pool, plus a duplicate-heavy burst:
/// six identical pipelined requests race through the pool and every one
/// must still replay the facade's bytes, whichever mix of cache hits and
/// parallel recomputes actually happened.
#[test]
fn families_and_formats_match_the_facade_four_workers() {
    for workload in scaled_suite(0.02) {
        for format in FORMATS {
            let text = input_text(&workload.workflow, format);
            assert_cold_warm(workload.name, &text, format, 4);

            let reference = dagprio::prioritize_workflow_text(&text, None, Some(format))
                .unwrap()
                .1;
            let lines: Vec<String> = (0..6)
                .map(|i| encode_request(&format!("r{i}"), &text, Some(format), None))
                .collect();
            let config = ServeConfig {
                threads: 4,
                ..ServeConfig::default()
            };
            let (by_id, stats) = run_session(&lines, config);
            assert_eq!(by_id.len(), 6, "{}/{format}", workload.name);
            for (id, v) in &by_id {
                assert_eq!(
                    str_field(v, "output"),
                    reference,
                    "{}/{format}/{id}: racing duplicate diverged from the facade",
                    workload.name
                );
            }
            assert_eq!(
                (stats.ok, stats.errors),
                (6, 0),
                "{}/{format}",
                workload.name
            );
        }
    }
}

/// Cross-format serving: the response rendered in a *different* output
/// format than the input is identical cold and warm, and matches an
/// import→prioritize→export reference built from the same pipeline
/// pieces the facade uses.
#[test]
fn cross_format_output_is_stable_cold_and_warm() {
    let workload = &scaled_suite(0.02)[0];
    let text = input_text(&workload.workflow, "edges");

    let reg = dagprio::dagman::registry();
    let input = reg.by_name("edges").unwrap();
    let wf = input.import(&text).unwrap();
    let result = dagprio::core::prioritize(&wf).unwrap();
    for output in FORMATS {
        let reference = reg
            .by_name(output)
            .unwrap()
            .export(&wf, &result.priorities());
        let lines = vec![
            encode_request("cold", &text, Some("edges"), Some(output)),
            encode_request("warm", &text, Some("edges"), Some(output)),
        ];
        let (by_id, stats) = run_session(&lines, ServeConfig::default());
        for id in ["cold", "warm"] {
            let v = &by_id[id];
            assert_eq!(str_field(v, "status"), "ok", "{output}/{id}");
            assert_eq!(str_field(v, "format"), output, "{output}/{id}");
            assert_eq!(str_field(v, "output"), reference, "{output}/{id}");
        }
        assert_eq!((stats.ok, stats.errors), (2, 0), "{output}");
    }
}

/// Two inputs with the identical CSR but different per-job metadata
/// (dagman submit files) share one *schedule* entry — and must never
/// share rendered bytes: every response, cold and warm, is
/// byte-identical to its own facade run, not the other input's.
#[test]
fn same_csr_different_metadata_never_replays_foreign_bytes() {
    let x = "JOB a ax.sub\nJOB b bx.sub\nPARENT a CHILD b\n";
    let y = "JOB a ay.sub\nJOB b by.sub\nPARENT a CHILD b\n";
    let ref_x = dagprio::prioritize_workflow_text(x, None, Some("dagman"))
        .unwrap()
        .1;
    let ref_y = dagprio::prioritize_workflow_text(y, None, Some("dagman"))
        .unwrap()
        .1;
    assert_ne!(ref_x, ref_y, "submit files must show up in the export");

    let lines = vec![
        encode_request("x1", x, Some("dagman"), None),
        encode_request("y1", y, Some("dagman"), None),
        encode_request("x2", x, Some("dagman"), None),
        encode_request("y2", y, Some("dagman"), None),
    ];
    let config = ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    };
    let (by_id, stats) = run_session(&lines, config);
    for (id, reference) in [
        ("x1", &ref_x),
        ("y1", &ref_y),
        ("x2", &ref_x),
        ("y2", &ref_y),
    ] {
        let v = &by_id[id];
        assert_eq!(str_field(v, "status"), "ok", "{id}");
        assert_eq!(
            str_field(v, "output"),
            reference.as_str(),
            "{id}: rendered bytes leaked across same-CSR cache entries"
        );
    }
    // x1 misses cold; y1 hits the shared schedule entry but renders its
    // own bytes; the two replays hit. One entry total.
    assert_eq!((stats.cache.hits, stats.cache.misses), (3, 1), "{stats:?}");
    assert_eq!(stats.cache.entries, 1, "same CSR shares one schedule entry");
    assert_eq!((stats.ok, stats.errors), (4, 0));
}

/// Random DAG strategy: arcs only between `i < j`, so every sample is
/// acyclic by construction (mirrors the pipeline proptest suite).
fn arb_dag(max_n: usize, density: f64) -> impl Strategy<Value = dagprio::graph::Dag> {
    (2..=max_n).prop_flat_map(move |n| {
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
            .collect();
        let k = pairs.len();
        proptest::collection::vec(proptest::bool::weighted(density), k).prop_map(move |mask| {
            let arcs: Vec<(u32, u32)> = pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(&p, _)| p)
                .collect();
            dagprio::graph::Dag::from_arcs(n, &arcs).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random dags through every format: the served response (cold and
    /// warm) equals the facade byte-for-byte.
    #[test]
    fn random_dags_match_the_facade(dag in arb_dag(14, 0.3)) {
        let workflow = Workflow::synthetic(dag);
        for format in FORMATS {
            let text = input_text(&workflow, format);
            assert_cold_warm("random", &text, format, 1);
        }
    }
}
